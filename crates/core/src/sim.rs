//! The cycle-level out-of-order core simulator.
//!
//! Trace-driven: a stream of [`DynOp`]s (the committed path, produced by the
//! functional interpreter or a synthetic generator) is replayed through a
//! detailed timing model of the paper's core (Table I): a width-limited
//! front end with gshare branch prediction, register renaming through a
//! RAT, a reorder buffer, reservation stations with wakeup/select
//! scheduling, per-class functional-unit pools, a load/store queue over a
//! two-level cache hierarchy, and in-order commit.
//!
//! Three scheduler modes share this pipeline (§VI-D):
//!
//! - **Baseline** — conventional scheduling; every single-cycle operation
//!   occupies exactly one cycle and completes at a clock boundary.
//! - **ReDSOC** — slack-aware scheduling (§III–IV): operations carry
//!   quantised compute times from the slack LUT; consumers begin evaluating
//!   at their producer's Completion Instant via transparent bypass; eager
//!   grandparent wakeup lets a consumer issue in the *same* cycle as its
//!   parent; skewed selection keeps speculative grants from displacing
//!   conventional ones; boundary-crossing evaluations hold their FU for two
//!   cycles.
//! - **MOS** — dynamic operation fusion: dependent single-cycle ops whose
//!   summed compute times fit one clock period execute in the same cycle on
//!   one FU.
//!
//! ## Sub-cycle timing model
//!
//! Absolute time is measured in CI *ticks* (`2^ci_bits` per cycle,
//! [`Quant`]). An instruction issued (selected) in cycle `t` reaches its FU
//! in cycle `t+1` and begins evaluating at
//! `max(start of t+1, availability of its sources)`. Producers broadcast
//! their tag at issue assuming single-cycle latency, so a consumer can be
//! selected at `t+1` (back to back); a producer whose transparent
//! evaluation crosses into its second cycle is caught mid-cycle by a
//! consumer arriving then — that is how slack accumulates across chains
//! without EGPW — while EGPW catches producers that complete *within* their
//! own execution cycle by issuing the consumer in the same cycle as the
//! producer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use redsoc_isa::instruction::Instr;
use redsoc_isa::opcode::{Cond, ExecClass, SimdOp};
use redsoc_isa::reg::{ArchReg, NUM_ARCH_REGS};
use redsoc_isa::trace::DynOp;
use redsoc_mem::MemoryHierarchy;
use redsoc_timing::optime::MultiCycleLatencies;
use redsoc_timing::pvt::{PvtModel, EPOCH_CYCLES};
use redsoc_timing::slack::{SlackBucket, SlackLut, WidthClass};
use redsoc_timing::width_predictor::{WidthOutcome, WidthPredictor};
use redsoc_timing::Quant;

use crate::branch::Gshare;
use crate::config::{CoreConfig, SchedMode};
use crate::events::{EventSink, NullSink, PipeEvent};
use crate::fu::{FuPool, PoolKind};
use crate::stats::{OpCategory, SimReport, StallCause};
use crate::tag_pred::{LastArrival, TagPredictor};

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline made no commit progress for an implausibly long time —
    /// a model bug, reported rather than hung.
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Instructions committed before the stall.
        committed: u64,
        /// Dump of the most recent pipeline events from the run's sink
        /// (empty when events were disabled — rerun with a retaining sink
        /// such as `RingSink` for the diagnostic).
        recent_events: Vec<String>,
    },
    /// The core configuration failed validation.
    BadConfig(String),
    /// The run was cancelled cooperatively — its [`CancelToken`] was
    /// triggered, or the token's cycle budget ran out. The partial run is
    /// discarded; this is the supervisor's watchdog path, not a model bug.
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
        /// Instructions committed before cancellation.
        committed: u64,
        /// Dump of the most recent pipeline events from the run's sink
        /// (empty when events were disabled).
        recent_events: Vec<String>,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                committed,
                recent_events,
            } => {
                write!(
                    f,
                    "no commit progress at cycle {cycle} ({committed} committed)"
                )?;
                if recent_events.is_empty() {
                    write!(
                        f,
                        "; events were disabled — rerun with --events for a pipeline dump"
                    )
                } else {
                    write!(f, "; last {} pipeline events:", recent_events.len())?;
                    for ev in recent_events {
                        write!(f, "\n  {ev}")?;
                    }
                    Ok(())
                }
            }
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Cancelled {
                cycle, committed, ..
            } => {
                write!(f, "run cancelled at cycle {cycle} ({committed} committed)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cooperative cancellation handle for a simulation run.
///
/// A token carries an optional **cycle budget** and a shared cancellation
/// flag. The simulator polls the token from its main loop (every 1024
/// cycles, so the check costs nothing measurable) and returns
/// [`SimError::Cancelled`] once either trips. Clone the token before
/// handing it to [`Simulator::with_cancel`] to keep a handle for
/// triggering cancellation from another thread (a watchdog, a signal
/// handler, a supervisor).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    budget: Option<u64>,
}

impl CancelToken {
    /// A token that never fires on its own (cancel via [`Self::cancel`]).
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that fires once the simulated cycle count reaches
    /// `max_cycles` — the job-level runaway watchdog.
    #[must_use]
    pub fn with_budget(max_cycles: u64) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            budget: Some(max_cycles),
        }
    }

    /// Request cancellation from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised (does not consider the budget).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The cycle budget, if one was set.
    #[must_use]
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Whether a run at `cycle` should stop.
    #[must_use]
    pub fn should_stop(&self, cycle: u64) -> bool {
        self.budget.is_some_and(|b| cycle >= b) || self.is_cancelled()
    }
}

/// Dynamic instruction state while in flight.
#[derive(Debug, Clone)]
struct Ifo {
    op: DynOp,
    class: ExecClass,
    recyclable: bool,
    pool: PoolKind,
    /// Producer tags of all register sources (deduplicated).
    srcs: Vec<u64>,
    /// Predicted-last-arriving source tag (operational RSE design).
    pred_last: Option<u64>,
    /// Predicted grandparent tag (the parent's own predicted-last parent).
    gp_tag: Option<u64>,
    /// When two source operands were unresolved at rename: the predicted
    /// position (`None` while the predictor is unconfident and conventional
    /// wakeup is used) plus the positions of the two candidate tags within
    /// `srcs`.
    pred_pos: Option<(Option<LastArrival>, usize, usize)>,
    /// Quantised compute time from the slack LUT (recyclable ops only).
    ext_ticks: u64,
    /// Predicted width at decode (scalar ALU ops).
    pred_width: WidthClass,
    /// Destination architectural register (for accumulate-chain detection).
    dst_arch: Option<ArchReg>,
    /// Earliest cycle this entry may request selection.
    earliest_req: u64,
    /// After a tag mispredict, fall back to all-operands wakeup.
    fallback: bool,
    issued: bool,
    issue_cycle: u64,
    /// First cycle consumers may be selected.
    sel_ready: u64,
    /// Estimated completion tick (the CI-bus value). Boundary for
    /// non-recyclable results.
    avail: u64,
    /// Cycle at which the ROB may retire this op.
    done_cycle: u64,
    /// Whether evaluation began mid-cycle (recycled slack).
    transparent: bool,
    /// Whether the evaluation crossed a clock boundary and held its FU for
    /// two cycles (IT3) — the `SlackHold` stall attribution.
    held_two: bool,
    chain_len: u32,
    chain_extended: bool,
    committed: bool,
    l1_miss: bool,
}

/// A fetched op waiting to dispatch.
#[derive(Debug, Clone, Copy)]
struct Fetched {
    op: DynOp,
    ready_cycle: u64,
}

/// Outcome of one issue attempt inside the select pass.
enum IssueOutcome {
    Issued,
    TagMispredict,
    SpecNotRecyclable,
    GpMispeculation,
}

/// The simulator: construct with [`Simulator::new`], feed a trace with
/// [`Simulator::run`].
///
/// ```no_run
/// use redsoc_core::config::{CoreConfig, SchedulerConfig};
/// use redsoc_core::sim::Simulator;
/// use redsoc_isa::prelude::*;
///
/// # fn get_trace() -> Vec<DynOp> { vec![] }
/// let trace = get_trace();
/// let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
/// let report = Simulator::new(config)?.run(trace.into_iter())?;
/// println!("IPC {:.2}", report.ipc());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: CoreConfig,
    cancel: CancelToken,
    quant: Quant,
    /// The design-time slack LUT (worst-case PVT corner).
    base_lut: SlackLut,
    /// The active LUT — equal to `base_lut`, or recalibrated against the
    /// measured PVT guard band each epoch (§V).
    lut: SlackLut,
    pvt: PvtModel,
    latencies: MultiCycleLatencies,

    // Pipeline state.
    cycle: u64,
    ifos: VecDeque<Ifo>,
    base_seq: u64,
    next_seq: u64,
    committed_total: u64,
    dispatched_total: u64,
    rse_used: u32,
    lsq_used: u32,
    rat: [Option<u64>; NUM_ARCH_REGS],
    fetchq: VecDeque<Fetched>,
    fetch_stopped: bool,
    pending_redirect: Option<u64>,
    fetch_blocked_until: u64,

    // Functional-unit pools.
    alu: FuPool,
    simd: FuPool,
    fp: FuPool,
    mem_ports: FuPool,

    // Predictors & memory.
    width_pred: WidthPredictor,
    tag_pred: TagPredictor,
    gshare: Gshare,
    memory: MemoryHierarchy,

    // Statistics.
    report: SimReport,
}

impl Simulator {
    /// Build a simulator for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the configuration is invalid.
    pub fn new(config: CoreConfig) -> Result<Self, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let quant = config.sched.quant();
        let memory =
            MemoryHierarchy::new(config.l1, config.l2, config.mem_latencies, config.prefetch);
        let pvt = if config.sched.pvt_guard_band {
            PvtModel::nominal()
        } else {
            PvtModel::worst_case()
        };
        Ok(Simulator {
            cancel: CancelToken::new(),
            quant,
            base_lut: SlackLut::new(),
            lut: SlackLut::new(),
            pvt,
            latencies: MultiCycleLatencies::default(),
            cycle: 0,
            ifos: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            committed_total: 0,
            dispatched_total: 0,
            rse_used: 0,
            lsq_used: 0,
            rat: [None; NUM_ARCH_REGS],
            fetchq: VecDeque::new(),
            fetch_stopped: false,
            pending_redirect: None,
            fetch_blocked_until: 0,
            alu: FuPool::new(config.alu_units),
            simd: FuPool::new(config.simd_units),
            fp: FuPool::new(config.fp_units),
            mem_ports: FuPool::new(config.mem_ports),
            width_pred: WidthPredictor::new(config.sched.width_predictor_entries, 3),
            tag_pred: TagPredictor::new(config.sched.tag_predictor_entries),
            gshare: Gshare::default_config(),
            memory,
            report: SimReport::default(),
            config,
        })
    }

    /// Attach a cancellation token (builder-style). The run polls the
    /// token and returns [`SimError::Cancelled`] once it trips — the
    /// cooperative cycle-budget watchdog used by the sweep supervisor.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Run the trace to completion and return the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline stops making
    /// progress (a model bug guard, not an expected outcome), or
    /// [`SimError::Cancelled`] if an attached [`CancelToken`] tripped.
    pub fn run(self, trace: impl Iterator<Item = DynOp>) -> Result<SimReport, SimError> {
        self.run_events(trace, &mut NullSink)
    }

    /// Run the trace, streaming pipeline events into `sink`.
    ///
    /// With the default [`NullSink`] (`EventSink::ENABLED == false`) every
    /// emission site monomorphises away and the run is identical to
    /// [`Simulator::run`]. Stall attribution is always on: it feeds
    /// `SimReport::stalls` regardless of the sink.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline stops making
    /// progress; the error carries `sink.recent()` as a diagnostic.
    pub fn run_events<S: EventSink>(
        mut self,
        mut trace: impl Iterator<Item = DynOp>,
        sink: &mut S,
    ) -> Result<SimReport, SimError> {
        let mut last_progress_cycle = 0u64;
        let mut last_committed = 0u64;
        loop {
            // Cooperative cancellation: polled every 1024 cycles so the
            // hot loop stays branch-predictable and watchdog budgets are
            // still observed within a rounding error of their value.
            if self.cycle & 0x3FF == 0 && self.cancel.should_stop(self.cycle) {
                return Err(SimError::Cancelled {
                    cycle: self.cycle,
                    committed: self.committed_total,
                    recent_events: sink.recent(),
                });
            }
            // CPM-driven LUT recalibration at epoch boundaries (§V).
            if self.config.sched.pvt_guard_band && self.cycle.is_multiple_of(EPOCH_CYCLES) {
                let gb = self.pvt.guard_band_ps(self.cycle);
                self.lut = self.base_lut.with_guard_band(gb);
            }
            let committed_before = self.committed_total;
            self.commit(sink);
            let fu_denied = self.select_and_issue(sink);
            let dispatch_block = self.dispatch(sink);
            self.fetch(&mut trace, sink);

            if self.committed_total != last_committed {
                last_committed = self.committed_total;
                last_progress_cycle = self.cycle;
            } else if self.cycle - last_progress_cycle > self.config.deadlock_cycles {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    committed: self.committed_total,
                    recent_events: sink.recent(),
                });
            }

            let drained = self.fetch_stopped
                && self.fetchq.is_empty()
                && self.committed_total == self.dispatched_total;
            if drained {
                break;
            }
            // Charge this cycle to exactly one cause: the partition
            // invariant `stalls.total() == cycles` holds by construction.
            let cause = self.attribute_stall(
                self.committed_total - committed_before,
                fu_denied,
                dispatch_block,
            );
            self.report.stalls.bump(cause);
            if S::ENABLED && cause != StallCause::Busy {
                sink.record(self.cycle, &PipeEvent::StallCycle { cause });
            }
            self.cycle += 1;
        }
        if self.cycle == 0 {
            // Empty trace: the report counts one cycle; charge it too.
            self.report.stalls.bump(StallCause::Frontend);
        }
        self.drain_chain_stats();
        self.report.cycles = self.cycle.max(1);
        self.report.committed = self.committed_total;
        self.report.tag_pred = self.tag_pred.stats();
        self.report.width_pred = self.width_pred.stats();
        self.report.branch = self.gshare.stats();
        self.report.memory = self.memory.stats();
        debug_assert_eq!(self.report.stalls.total(), self.report.cycles);
        Ok(self.report)
    }

    /// Pick the single cause this non-draining cycle is charged to.
    ///
    /// Priority: a retiring cycle is busy; otherwise the ROB head explains
    /// the stall (it is the oldest instruction, so nothing younger can be
    /// the bottleneck): an issued head is waiting on the memory hierarchy,
    /// a boundary-crossing slack hold, or plain execution latency; an
    /// unissued head was denied a functional unit, blocked behind a store,
    /// or is waiting on dispatch back-pressure. An empty ROB is the front
    /// end's fault.
    fn attribute_stall(
        &self,
        committed_delta: u64,
        fu_denied: bool,
        dispatch_block: Option<StallCause>,
    ) -> StallCause {
        if committed_delta > 0 {
            return StallCause::Busy;
        }
        let head_idx = (self.committed_total - self.base_seq) as usize;
        match self.ifos.get(head_idx) {
            Some(head) if head.issued => {
                if matches!(head.class, ExecClass::Load | ExecClass::Store) {
                    StallCause::Memory
                } else if head.held_two {
                    StallCause::SlackHold
                } else {
                    StallCause::ExecLatency
                }
            }
            Some(head) => {
                if fu_denied {
                    StallCause::FuContention
                } else if matches!(head.op.instr, Instr::Load { .. }) && self.load_blocked(head) {
                    StallCause::Memory
                } else if let Some(cause) = dispatch_block {
                    cause
                } else {
                    StallCause::Frontend
                }
            }
            None => dispatch_block.unwrap_or(StallCause::Frontend),
        }
    }

    // ------------------------------------------------------------------
    // Helpers over the in-flight window.
    // ------------------------------------------------------------------

    fn ifo(&self, tag: u64) -> Option<&Ifo> {
        if tag < self.base_seq {
            None // retired long ago: architecturally ready
        } else {
            self.ifos.get((tag - self.base_seq) as usize)
        }
    }

    fn ifo_mut(&mut self, tag: u64) -> Option<&mut Ifo> {
        if tag < self.base_seq {
            None
        } else {
            self.ifos.get_mut((tag - self.base_seq) as usize)
        }
    }

    /// Whether `consumer` is a VMLA reading `tag`'s value through its
    /// accumulate operand (i.e. the producer wrote the VMLA's destination
    /// register). Only this operand is late-forwarded; the multiply
    /// operands feed the front of the multiply pipeline.
    fn is_acc_operand(producer: &Ifo, consumer: &Ifo) -> bool {
        let Instr::Simd {
            op: SimdOp::Vmla,
            dst,
            ..
        } = consumer.op.instr
        else {
            return false;
        };
        producer.dst_arch == Some(dst)
    }

    /// First cycle at which consumers of `tag` may be selected; `None` if
    /// the producer has not issued yet. Retired producers are ready.
    ///
    /// A VMLA's multiply operands need an extra `simd_mul - 1` cycles of
    /// lead so the pipelined multiply overlaps the accumulate chain (§V
    /// late-forwarding); its accumulate operand follows the normal
    /// single-cycle path.
    fn src_sel_ready(&self, tag: u64, consumer: &Ifo) -> Option<u64> {
        let Some(p) = self.ifo(tag) else {
            return Some(0);
        };
        if !p.issued {
            return None;
        }
        let is_vmla = matches!(
            consumer.op.instr,
            Instr::Simd {
                op: SimdOp::Vmla,
                ..
            }
        );
        if is_vmla && !Self::is_acc_operand(p, consumer) {
            return Some(p.sel_ready + u64::from(self.latencies.simd_mul - 1));
        }
        Some(p.sel_ready)
    }

    /// The tick at which `consumer` can use `producer`'s value: the raw
    /// Completion Instant through the transparent bypass (same-domain
    /// recyclable pairs under ReDSOC), or the next clock boundary.
    ///
    /// A VMLA consumer sees transparency only on its accumulate operand —
    /// multiply operands enter the (true-synchronous) multiply array.
    fn avail_for(&self, tag: u64, consumer: &Ifo) -> (u64, bool) {
        let Some(p) = self.ifo(tag) else {
            return (0, false);
        };
        debug_assert!(p.issued, "avail_for called before producer issue");
        let is_vmla = matches!(
            consumer.op.instr,
            Instr::Simd {
                op: SimdOp::Vmla,
                ..
            }
        );
        if is_vmla && !Self::is_acc_operand(p, consumer) {
            return (self.quant.ceil_to_cycle(p.avail), false);
        }
        let transparent = self.config.sched.mode == SchedMode::Redsoc
            && consumer.recyclable
            && p.recyclable
            && p.pool == consumer.pool;
        if transparent {
            (p.avail, self.quant.ci_of(p.avail) != 0)
        } else {
            (self.quant.ceil_to_cycle(p.avail), false)
        }
    }

    // ------------------------------------------------------------------
    // Fetch.
    // ------------------------------------------------------------------

    fn fetch<S: EventSink>(&mut self, trace: &mut impl Iterator<Item = DynOp>, sink: &mut S) {
        // Resolve a pending branch redirect once the branch executes.
        if let Some(seq) = self.pending_redirect {
            let done = self.ifo(seq).filter(|i| i.issued).map(|i| i.done_cycle);
            match done {
                Some(d) if self.cycle >= d => {
                    self.pending_redirect = None;
                    self.fetch_blocked_until = d + u64::from(self.config.mispredict_penalty);
                    if S::ENABLED {
                        sink.record(
                            self.cycle,
                            &PipeEvent::FetchRedirect {
                                seq,
                                resume_cycle: self.fetch_blocked_until,
                            },
                        );
                    }
                }
                _ => return,
            }
        }
        if self.cycle < self.fetch_blocked_until || self.fetch_stopped {
            return;
        }
        let cap = (self.config.frontend_width * 4) as usize;
        let ready = self.cycle + u64::from(self.config.frontend_depth);
        for _ in 0..self.config.frontend_width {
            if self.fetchq.len() >= cap {
                break;
            }
            let Some(op) = trace.next() else {
                self.fetch_stopped = true;
                break;
            };
            let is_halt = matches!(op.instr, Instr::Halt);
            let mispredicted = match op.instr {
                Instr::Branch { cond, .. } if cond.reads_flags() => {
                    !self.gshare.predict_and_train(op.pc, op.taken)
                }
                Instr::Branch { cond: Cond::Al, .. } => false,
                _ => false,
            };
            self.fetchq.push_back(Fetched {
                op,
                ready_cycle: ready,
            });
            if S::ENABLED {
                sink.record(
                    self.cycle,
                    &PipeEvent::Fetch {
                        seq: op.seq,
                        pc: op.pc,
                    },
                );
            }
            if is_halt {
                self.fetch_stopped = true;
                break;
            }
            if mispredicted {
                self.pending_redirect = Some(op.seq);
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename + allocate).
    // ------------------------------------------------------------------

    fn rob_free(&self) -> bool {
        (self.dispatched_total - self.committed_total) < u64::from(self.config.rob_entries)
    }

    /// Dispatch up to one front-end width of fetched ops. Returns the
    /// back-pressure reason that stopped dispatch while an op was ready,
    /// if any (the structural-hazard input to stall attribution).
    fn dispatch<S: EventSink>(&mut self, sink: &mut S) -> Option<StallCause> {
        let mut block = None;
        for _ in 0..self.config.frontend_width {
            let Some(head) = self.fetchq.front() else {
                break;
            };
            if head.ready_cycle > self.cycle {
                break;
            }
            let op = head.op;
            let is_mem = op.instr.is_mem();
            if !self.rob_free() {
                block = Some(StallCause::RobFull);
                break;
            }
            if self.rse_used >= self.config.rse_entries {
                block = Some(StallCause::RsFull);
                break;
            }
            if is_mem && self.lsq_used >= self.config.lsq_entries {
                block = Some(StallCause::LsqFull);
                break;
            }
            self.fetchq.pop_front();
            self.allocate(op, sink);
        }
        block
    }

    fn allocate<S: EventSink>(&mut self, op: DynOp, sink: &mut S) {
        let seq = self.next_seq;
        debug_assert_eq!(seq, op.seq, "trace must be consumed in order");
        let class = op.instr.exec_class();
        let mut recyclable = class.is_recyclable();
        let pool = PoolKind::for_class(class);

        // VMLA late-forwarding (§V): Cortex-A57-style multiply-accumulate
        // forwards the accumulate operand into the final adder stage, so a
        // chain of VMLAs executes as sequential single-cycle accumulates —
        // and under ReDSOC the accumulate adder's slack (narrow lanes!) is
        // recyclable like any other single-cycle SIMD op. The pipelined
        // multiply overlaps older chain links; its operands therefore need
        // an extra lead time, enforced in `src_sel_ready`.
        let mut vmla_acc_ext: Option<u64> = None;
        if let Instr::Simd {
            op: SimdOp::Vmla,
            ty,
            ..
        } = op.instr
        {
            recyclable = true;
            vmla_acc_ext = Some(
                self.quant
                    .ps_to_ticks_ceil(redsoc_timing::optime::simd_accumulate_ps(ty)),
            );
        }

        // Resolve sources through the RAT (deduplicated, program order).
        let mut srcs: Vec<u64> = Vec::with_capacity(4);
        let mut src_positions: Vec<usize> = Vec::new();
        for (pos, reg) in op.instr.srcs().iter().enumerate() {
            if let Some(tag) = self.rat[reg.index()] {
                if !srcs.contains(&tag) {
                    srcs.push(tag);
                    src_positions.push(pos);
                }
            }
        }

        // Width prediction (scalar single-cycle ALU ops, §II-B).
        let pred_width = if class == ExecClass::IntAlu {
            self.width_pred.predict(op.pc)
        } else {
            WidthClass::W32
        };

        // Slack-LUT compute time for recyclable ops.
        let ext_ticks = if let Some(acc) = vmla_acc_ext {
            acc
        } else if recyclable {
            let bucket =
                SlackBucket::classify(&op.instr, pred_width).expect("recyclable ops classify");
            self.quant.ps_to_ticks_ceil(self.lut.compute_ps(bucket))
        } else {
            0
        };

        // Operational-design last-arrival prediction (§IV-C): among sources
        // whose producers are still waiting to issue.
        let unissued: Vec<(usize, u64)> = srcs
            .iter()
            .enumerate()
            .filter(|(_, &t)| self.ifo(t).is_some_and(|p| !p.issued))
            .map(|(i, &t)| (i, t))
            .collect();
        let use_prediction = self.config.sched.mode == SchedMode::Redsoc && recyclable;
        let (pred_last, pred_pos) = match unissued.as_slice() {
            [] => {
                // Everything issued: the operand with the latest broadcast
                // is trivially "last"; no prediction consumed.
                let last = srcs
                    .iter()
                    .copied()
                    .max_by_key(|&t| self.ifo(t).map_or(0, |p| p.sel_ready));
                (last, None)
            }
            [(_, t)] => (Some(*t), None),
            [(i0, t0), (i1, t1)] if use_prediction => {
                match self.tag_pred.predict(op.pc) {
                    Some(p) => {
                        let chosen = match p {
                            LastArrival::Src0 => *t0,
                            LastArrival::Src1 => *t1,
                        };
                        (Some(chosen), Some((Some(p), *i0, *i1)))
                    }
                    None => {
                        // Unconfident entry: conventional two-tag wakeup
                        // (no penalty risk); keep training at issue.
                        ((*t0).max(*t1).into(), Some((None, *i0, *i1)))
                    }
                }
            }
            rest => {
                // 3+ unresolved producers: take the youngest (heuristically
                // last to arrive); no predictor involvement.
                (rest.iter().map(|(_, t)| *t).max(), None)
            }
        };

        // Grandparent tag: the predicted-last parent's own predicted-last
        // parent, passed through rename exactly as in the paper.
        let gp_tag = pred_last
            .and_then(|t| self.ifo(t))
            .and_then(|p| p.pred_last);

        let ifo = Ifo {
            op,
            class,
            recyclable,
            pool,
            srcs,
            pred_last,
            gp_tag,
            pred_pos,
            ext_ticks,
            pred_width,
            dst_arch: op.instr.dst(),
            earliest_req: self.cycle + 1,
            fallback: matches!(pred_pos, Some((None, _, _))),
            issued: false,
            issue_cycle: 0,
            sel_ready: 0,
            avail: 0,
            done_cycle: 0,
            transparent: false,
            held_two: false,
            chain_len: 1,
            chain_extended: false,
            committed: false,
            l1_miss: false,
        };

        // RAT update: destination register and flags.
        if let Some(d) = op.instr.dst() {
            self.rat[d.index()] = Some(seq);
        }
        if op.instr.writes_flags() {
            self.rat[ArchReg::flags().index()] = Some(seq);
        }

        self.ifos.push_back(ifo);
        self.next_seq += 1;
        self.dispatched_total += 1;
        self.rse_used += 1;
        if op.instr.is_mem() {
            self.lsq_used += 1;
        }
        if S::ENABLED {
            sink.record(
                self.cycle,
                &PipeEvent::Dispatch {
                    seq,
                    pc: op.pc,
                    pool,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Wakeup + (skewed) select + issue.
    // ------------------------------------------------------------------

    /// Whether a waiting load is blocked by an older overlapping store that
    /// has not produced its data yet (perfect disambiguation: the trace
    /// gives exact addresses).
    fn load_blocked(&self, load: &Ifo) -> bool {
        let Some(addr) = load.op.eff_addr else {
            return false;
        };
        let (a0, a1) = Self::byte_range(addr, &load.op.instr);
        self.ifos.iter().any(|s| {
            s.op.seq < load.op.seq
                && matches!(s.op.instr, Instr::Store { .. })
                && !s.issued
                && s.op.eff_addr.is_some_and(|sa| {
                    let (s0, s1) = Self::byte_range(sa, &s.op.instr);
                    s0 < a1 && a0 < s1
                })
        })
    }

    fn byte_range(addr: u32, instr: &Instr) -> (u64, u64) {
        let w = match instr {
            Instr::Load { width, .. } | Instr::Store { width, .. } => width.bytes(),
            _ => 4,
        };
        (u64::from(addr), u64::from(addr) + u64::from(w))
    }

    /// The youngest older store overlapping this load, if any (for
    /// store-to-load forwarding).
    fn forwarding_store(&self, load: &Ifo) -> Option<&Ifo> {
        let addr = load.op.eff_addr?;
        let (a0, a1) = Self::byte_range(addr, &load.op.instr);
        self.ifos
            .iter()
            .filter(|s| {
                s.op.seq < load.op.seq
                    && matches!(s.op.instr, Instr::Store { .. })
                    && s.op.eff_addr.is_some_and(|sa| {
                        let (s0, s1) = Self::byte_range(sa, &s.op.instr);
                        s0 < a1 && a0 < s1
                    })
            })
            .max_by_key(|s| s.op.seq)
    }

    /// Build this cycle's select request: `Some(spec)` if the entry
    /// requests, with `spec = true` for grandparent-speculative requests.
    fn request_kind(&self, x: &Ifo) -> Option<bool> {
        if x.issued || x.earliest_req > self.cycle {
            return None;
        }
        if matches!(x.op.instr, Instr::Load { .. }) && self.load_blocked(x) {
            return None;
        }
        let all_ready = x
            .srcs
            .iter()
            .all(|&t| self.src_sel_ready(t, x).is_some_and(|r| r <= self.cycle));
        let use_pred = self.config.sched.mode == SchedMode::Redsoc && x.recyclable && !x.fallback;
        let nonspec = if use_pred {
            match x.pred_last {
                None => true,
                Some(t) => self.src_sel_ready(t, x).is_some_and(|r| r <= self.cycle),
            }
        } else {
            all_ready
        };
        if nonspec {
            return Some(false);
        }
        // Eager grandparent wakeup (§IV-B): speculative request once the
        // grandparent has broadcast, hoping the parent issues this cycle.
        if self.config.sched.mode == SchedMode::Redsoc && self.config.sched.egpw && x.recyclable {
            if let Some(gp) = x.gp_tag {
                if self.src_sel_ready(gp, x).is_some_and(|r| r <= self.cycle) {
                    return Some(true);
                }
            }
        }
        None
    }

    fn pool_mut(&mut self, kind: PoolKind) -> &mut FuPool {
        match kind {
            PoolKind::Alu => &mut self.alu,
            PoolKind::Simd => &mut self.simd,
            PoolKind::Fp => &mut self.fp,
            PoolKind::Mem => &mut self.mem_ports,
        }
    }

    fn pool(&self, kind: PoolKind) -> &FuPool {
        match kind {
            PoolKind::Alu => &self.alu,
            PoolKind::Simd => &self.simd,
            PoolKind::Fp => &self.fp,
            PoolKind::Mem => &self.mem_ports,
        }
    }

    /// One wakeup/select/issue pass. Returns whether a non-speculative
    /// request was denied a unit this cycle (the FU-contention signal).
    fn select_and_issue<S: EventSink>(&mut self, sink: &mut S) -> bool {
        // Gather requests per pool.
        let mut requests: Vec<(PoolKind, Vec<(u64, bool)>)> =
            [PoolKind::Alu, PoolKind::Simd, PoolKind::Fp, PoolKind::Mem]
                .into_iter()
                .map(|k| (k, Vec::new()))
                .collect();
        for x in &self.ifos {
            if x.committed || x.issued {
                continue;
            }
            if let Some(spec) = self.request_kind(x) {
                let slot = requests
                    .iter_mut()
                    .find(|(k, _)| *k == x.pool)
                    .expect("pool exists");
                slot.1.push((x.op.seq, spec));
            }
        }

        let exec_cycle = self.cycle + 1;
        let mut stalled = false;
        let mut granted_this_cycle: Vec<u64> = Vec::new();

        for (kind, mut reqs) in requests {
            if reqs.is_empty() {
                continue;
            }
            // Skewed selection (§IV-D): non-speculative requests first,
            // oldest-first within each group. Unskewed: purely oldest-first
            // (the original GPW behaviour, exposing GP-mispeculation).
            if self.config.sched.skewed_select {
                reqs.sort_by_key(|&(seq, spec)| (spec, seq));
            } else {
                reqs.sort_by_key(|&(seq, _)| seq);
            }
            let mut free = self.pool(kind).free_units(exec_cycle);
            for (seq, spec) in reqs {
                if free == 0 {
                    if !spec {
                        stalled = true;
                    }
                    continue;
                }
                free -= 1; // the grant slot is consumed even if wasted
                if S::ENABLED {
                    sink.record(self.cycle, &PipeEvent::SelectGrant { seq, spec });
                }
                match self.try_issue(seq, spec, &granted_this_cycle, sink) {
                    IssueOutcome::Issued => granted_this_cycle.push(seq),
                    IssueOutcome::TagMispredict
                    | IssueOutcome::SpecNotRecyclable
                    | IssueOutcome::GpMispeculation => {}
                }
            }
        }
        if stalled {
            self.report.fu_stall_cycles += 1;
        }
        stalled
    }

    /// Attempt to issue `seq` (granted by select this cycle).
    #[allow(clippy::too_many_lines)]
    fn try_issue<S: EventSink>(
        &mut self,
        seq: u64,
        spec: bool,
        granted: &[u64],
        sink: &mut S,
    ) -> IssueOutcome {
        let t = self.cycle;
        let q = self.quant;
        let arrival = q.cycle_start(t + 1);
        // Snapshot the Copy scalars once; `srcs` — the only non-Copy field
        // needed — is re-borrowed per read-only phase below, which keeps
        // the hot path free of a full-entry clone.
        let (op, class, recyclable, pool, pred_last, pred_pos, ext_ticks, pred_width, fallback) = {
            let x = self.ifo(seq).expect("requesting entry exists");
            (
                x.op,
                x.class,
                x.recyclable,
                x.pool,
                x.pred_last,
                x.pred_pos,
                x.ext_ticks,
                x.pred_width,
                x.fallback,
            )
        };

        if spec {
            // EGPW grant: useful only when the parent issued *this* cycle
            // and leaves recyclable slack within its execution cycle
            // (§IV-A, §IV-D "recycling decision").
            let Some(parent_tag) = pred_last else {
                self.report.egpw_wasted += 1;
                if S::ENABLED {
                    sink.record(t, &PipeEvent::SpecWasted { seq });
                }
                return IssueOutcome::SpecNotRecyclable;
            };
            let parent_granted = granted.contains(&parent_tag);
            if !parent_granted {
                if self.config.sched.skewed_select {
                    // Skewed arbitration: the child can never race ahead of
                    // its parent; the grant is simply unused.
                    self.report.egpw_wasted += 1;
                    if S::ENABLED {
                        sink.record(t, &PipeEvent::SpecWasted { seq });
                    }
                    return IssueOutcome::SpecNotRecyclable;
                }
                // Unskewed: the child was selected ahead of its parent —
                // a GP-mispeculation needing recovery (§IV-B).
                self.report.gp_mispeculations += 1;
                let pen = u64::from(self.config.sched.tag_mispredict_penalty);
                let x = self.ifo_mut(seq).expect("entry");
                x.earliest_req = t + pen;
                if S::ENABLED {
                    sink.record(
                        t,
                        &PipeEvent::GpMispeculation {
                            seq,
                            retry_cycle: t + pen,
                        },
                    );
                }
                return IssueOutcome::GpMispeculation;
            }
            let usable = {
                let x = self.ifo(seq).expect("requesting entry exists");
                let p = self.ifo(parent_tag).expect("granted parent in flight");
                let recycle_ok = p.recyclable
                    && p.pool == x.pool
                    && p.avail < q.cycle_start(t + 2) // completes within its own cycle
                    && q.ci_of(p.avail) <= self.config.sched.threshold_ticks
                    && q.ci_of(p.avail) != 0;
                // All other operands must be ready in time as well.
                let others_ok = x
                    .srcs
                    .iter()
                    .all(|&s| s == parent_tag || self.src_sel_ready(s, x).is_some_and(|r| r <= t));
                recycle_ok && others_ok
            };
            if !usable {
                self.report.egpw_wasted += 1;
                if S::ENABLED {
                    sink.record(t, &PipeEvent::SpecWasted { seq });
                }
                return IssueOutcome::SpecNotRecyclable;
            }
        } else {
            // Scoreboard validation of the last-arrival prediction
            // (operational design, §IV-C): every operand *not* predicted
            // last must already be available.
            let use_pred = self.config.sched.mode == SchedMode::Redsoc && recyclable && !fallback;
            if use_pred {
                // `late_is_src0` resolves the misprediction direction while
                // the srcs borrow is live.
                let not_ready: Option<bool> = {
                    let x = self.ifo(seq).expect("requesting entry exists");
                    x.srcs
                        .iter()
                        .copied()
                        .find(|&s| {
                            Some(s) != pred_last && self.src_sel_ready(s, x).is_none_or(|r| r > t)
                        })
                        .map(|late| {
                            matches!(pred_pos, Some((Some(_), i0, _)) if x.srcs.get(i0) == Some(&late))
                        })
                };
                if let Some(late_is_src0) = not_ready {
                    // Tag mispredict: recover by falling back to
                    // all-operand wakeup after a small penalty.
                    if let Some((Some(pred), _i0, _i1)) = pred_pos {
                        let actual = if late_is_src0 {
                            LastArrival::Src0
                        } else {
                            LastArrival::Src1
                        };
                        self.tag_pred.update(op.pc, pred, actual);
                    }
                    let pen = u64::from(self.config.sched.tag_mispredict_penalty);
                    let xm = self.ifo_mut(seq).expect("entry");
                    xm.fallback = true;
                    xm.earliest_req = t + pen;
                    if S::ENABLED {
                        sink.record(
                            t,
                            &PipeEvent::TagMispredict {
                                seq,
                                retry_cycle: t + pen,
                            },
                        );
                    }
                    return IssueOutcome::TagMispredict;
                }
                // Correct prediction: train towards the observed behaviour.
                if let Some((Some(pred), _, _)) = pred_pos {
                    self.tag_pred.update(op.pc, pred, pred);
                }
            }
        }

        // Confidence warm-up: when no prediction was consumed, train the
        // predictor with the observed last-arrival order of the two
        // candidates.
        if let Some((None, i0, i1)) = pred_pos {
            let actual = {
                let x = self.ifo(seq).expect("requesting entry exists");
                let ready = |pos: usize| {
                    x.srcs
                        .get(pos)
                        .and_then(|&s| self.ifo(s))
                        .map_or(0, |p| p.sel_ready)
                };
                if ready(i0) > ready(i1) {
                    LastArrival::Src0
                } else {
                    LastArrival::Src1
                }
            };
            self.tag_pred.train_only(op.pc, actual);
        }

        // Compute the evaluation start: the latest source availability,
        // never earlier than FU arrival.
        let (start, trans_src) = {
            let x = self.ifo(seq).expect("requesting entry exists");
            let mut start = arrival;
            let mut trans_src: Option<u64> = None;
            for &s in &x.srcs {
                let (a, transparent) = self.avail_for(s, x);
                if a > start {
                    start = a;
                    trans_src = transparent.then_some(s);
                } else if a == start && transparent && start > arrival {
                    trans_src = Some(s);
                }
            }
            (start, trans_src)
        };
        if start >= q.cycle_start(t + 2) {
            // Defensive: the value only materialises after our FU hold.
            let xm = self.ifo_mut(seq).expect("entry");
            xm.earliest_req = t + 1;
            return IssueOutcome::SpecNotRecyclable;
        }

        // Per-class completion/occupancy.
        let mode = self.config.sched.mode;
        let tpc = q.ticks_per_cycle();
        let (sel_ready, avail, done_cycle, occupancy, l1_miss, held_two) = match class {
            _ if recyclable => {
                if mode == SchedMode::Redsoc {
                    // Width-prediction validation at execute (§II-B).
                    let mut ext = ext_ticks;
                    let mut replay = 0u64;
                    if class == ExecClass::IntAlu {
                        let actual = WidthClass::from_bits(op.eff_bits);
                        let outcome = self.width_pred.update(op.pc, pred_width, actual);
                        if outcome == WidthOutcome::Aggressive {
                            // Selective reissue: full-width re-execution.
                            let bucket = SlackBucket::classify(&op.instr, WidthClass::W32)
                                .expect("ALU classifies");
                            ext = q.ps_to_ticks_ceil(self.lut.compute_ps(bucket));
                            replay = u64::from(self.config.sched.width_replay_penalty) * tpc;
                        }
                    }
                    let completion = start + ext + replay;
                    let crossing = completion > q.cycle_start(t + 2);
                    // A reissued (width-mispredicted) op frees its unit and
                    // re-executes later, so occupancy stays at most the
                    // two-cycle transparent hold.
                    let occ = ((q.ceil_to_cycle(completion).max(q.cycle_start(t + 2))
                        - q.cycle_start(t + 1))
                        / tpc)
                        .min(2);
                    if crossing {
                        self.report.two_cycle_holds += 1;
                    }
                    (
                        t + 1,
                        completion,
                        q.cycle_of(q.ceil_to_cycle(completion)).max(t + 2),
                        occ as u32,
                        false,
                        crossing,
                    )
                } else {
                    // Baseline / MOS: one full cycle, boundary completion.
                    (t + 1, q.cycle_start(t + 2), t + 2, 1, false, false)
                }
            }
            ExecClass::IntMul => {
                let l = u64::from(self.latencies.int_mul);
                (t + l, q.cycle_start(t + 1 + l), t + 1 + l, 1, false, false)
            }
            ExecClass::IntDiv => {
                let l = u64::from(self.latencies.int_div);
                (
                    t + l,
                    q.cycle_start(t + 1 + l),
                    t + 1 + l,
                    self.latencies.int_div,
                    false,
                    false,
                )
            }
            ExecClass::Fp => {
                let instr_lat = match op.instr {
                    Instr::Fp {
                        op: redsoc_isa::opcode::FpOp::Fdiv,
                        ..
                    } => self.latencies.fp_div,
                    Instr::Fp {
                        op: redsoc_isa::opcode::FpOp::Fmul,
                        ..
                    } => self.latencies.fp_mul,
                    _ => self.latencies.fp_add,
                };
                let l = u64::from(instr_lat);
                (t + l, q.cycle_start(t + 1 + l), t + 1 + l, 1, false, false)
            }
            ExecClass::SimdMul => {
                let l = u64::from(self.latencies.simd_mul);
                (t + l, q.cycle_start(t + 1 + l), t + 1 + l, 1, false, false)
            }
            ExecClass::Load => {
                let fwd_ready = {
                    let x = self.ifo(seq).expect("requesting entry exists");
                    self.forwarding_store(x).map(|s| s.done_cycle)
                };
                if let Some(store_done) = fwd_ready {
                    // Store-to-load forwarding: 2-cycle effective latency
                    // once the store's data is in the LSQ.
                    let ready = store_done.max(t);
                    let l = (ready - t) + 2;
                    (t + l, q.cycle_start(t + 1 + l), t + 1 + l, 1, false, false)
                } else {
                    let addr = u64::from(op.eff_addr.expect("loads carry addresses"));
                    let res = self.memory.access(op.pc, addr, false);
                    let l = 1 + u64::from(res.latency_cycles); // AGU + access
                    (
                        t + l,
                        q.cycle_start(t + 1 + l),
                        t + 1 + l,
                        1,
                        res.outcome.is_high_latency(),
                        false,
                    )
                }
            }
            ExecClass::Store => (t + 1, q.cycle_start(t + 2), t + 2, 1, false, false),
            ExecClass::Branch => (t + 1, q.cycle_start(t + 2), t + 2, 1, false, false),
            ExecClass::IntAlu | ExecClass::SimdAlu => {
                unreachable!("single-cycle ALU classes are always recyclable")
            }
        };

        // MOS fusion is attempted after the producer issues (below).
        let unit = self.pool_mut(pool).reserve(t + 1, occupancy.max(1));
        debug_assert!(unit.is_some(), "select only grants when a unit is free");
        let unit = unit.unwrap_or(0);

        let transparent = start > arrival;
        // Chain accounting (Fig. 11).
        let (chain_len, producer_to_extend) = if transparent {
            if let Some(ptag) = trans_src {
                let plen = self.ifo(ptag).map_or(0, |p| p.chain_len);
                (plen + 1, Some(ptag))
            } else {
                (1, None)
            }
        } else {
            (1, None)
        };
        if let Some(ptag) = producer_to_extend {
            if let Some(p) = self.ifo_mut(ptag) {
                p.chain_extended = true;
            }
        }
        if transparent {
            self.report.recycled_ops += 1;
            if spec {
                self.report.egpw_issues += 1;
            }
        }

        {
            let xm = self.ifo_mut(seq).expect("entry");
            xm.issued = true;
            xm.issue_cycle = t;
            xm.sel_ready = sel_ready;
            xm.avail = avail;
            xm.done_cycle = done_cycle;
            xm.transparent = transparent;
            xm.held_two = held_two;
            xm.chain_len = chain_len;
            xm.l1_miss = l1_miss;
        }
        self.rse_used -= 1;
        if S::ENABLED {
            sink.record(
                t,
                &PipeEvent::Issue {
                    seq,
                    pool,
                    unit,
                    start_tick: start,
                    avail_tick: avail,
                    occupancy: occupancy.max(1),
                    transparent,
                    spec,
                },
            );
            sink.record(
                t,
                &PipeEvent::CiBroadcast {
                    seq,
                    avail_tick: avail,
                },
            );
        }

        if mode == SchedMode::Mos && recyclable {
            self.fuse_chain(seq, t, unit, sink);
        }
        IssueOutcome::Issued
    }

    /// MOS (§VI-D): after issuing `producer`, greedily pack dependent
    /// single-cycle ops into the same execution cycle while their summed
    /// compute times fit within one clock period.
    fn fuse_chain<S: EventSink>(&mut self, producer: u64, t: u64, unit: u32, sink: &mut S) {
        let q = self.quant;
        let tpc = q.ticks_per_cycle();
        let mut head = producer;
        let mut budget = self.ifo(head).expect("producer").ext_ticks;
        loop {
            let head_pool = self.ifo(head).expect("chain head").pool;
            // Find the oldest waiting recyclable consumer of `head` whose
            // other operands are already at the FU boundary.
            let candidate = self
                .ifos
                .iter()
                .filter(|y| {
                    !y.issued
                        && !y.committed
                        && y.recyclable
                        && y.pool == head_pool
                        && y.earliest_req <= t + 1
                        && y.srcs.contains(&head)
                        && budget + y.ext_ticks <= tpc
                        && y.srcs
                            .iter()
                            .all(|&s| s == head || self.src_sel_ready(s, y).is_some_and(|r| r <= t))
                })
                .min_by_key(|y| y.op.seq)
                .map(|y| y.op.seq);
            let Some(ynum) = candidate else { break };
            let start_offset = budget; // fused op starts after the chain so far
            budget += self.ifo(ynum).expect("candidate").ext_ticks;
            // The fused op rides the producer's FU and completes at the
            // same boundary.
            {
                let ym = self.ifo_mut(ynum).expect("candidate");
                ym.issued = true;
                ym.issue_cycle = t;
                ym.sel_ready = t + 1;
                ym.avail = q.cycle_start(t + 2);
                ym.done_cycle = t + 2;
                ym.transparent = false;
            }
            self.rse_used -= 1;
            self.report.recycled_ops += 1; // fused ops saved a cycle
            if S::ENABLED {
                sink.record(
                    t,
                    &PipeEvent::Issue {
                        seq: ynum,
                        pool: head_pool,
                        unit,
                        start_tick: q.cycle_start(t + 1) + start_offset,
                        avail_tick: q.cycle_start(t + 2),
                        occupancy: 0, // fused: rides the producer's unit
                        transparent: false,
                        spec: false,
                    },
                );
                sink.record(
                    t,
                    &PipeEvent::CiBroadcast {
                        seq: ynum,
                        avail_tick: q.cycle_start(t + 2),
                    },
                );
            }
            head = ynum;
        }
    }

    // ------------------------------------------------------------------
    // Commit.
    // ------------------------------------------------------------------

    fn commit<S: EventSink>(&mut self, sink: &mut S) {
        for _ in 0..self.config.frontend_width {
            let head_idx = (self.committed_total - self.base_seq) as usize;
            let Some(head) = self.ifos.get(head_idx) else {
                break;
            };
            if !head.issued || self.cycle < head.done_cycle {
                break;
            }
            // `DynOp` and the flags are Copy: no full-entry clone needed.
            let (op, mut l1_miss, done_cycle) = (head.op, head.l1_miss, head.done_cycle);
            // Stores update the memory system at retirement.
            if let Instr::Store { .. } = op.instr {
                let addr = u64::from(op.eff_addr.expect("stores carry addresses"));
                let res = self.memory.access(op.pc, addr, true);
                l1_miss = res.outcome.is_high_latency();
            }
            // Fig. 10 classification uses the *actual* operand width.
            let cat = OpCategory::classify(
                &op.instr,
                l1_miss,
                WidthClass::from_bits(op.eff_bits),
                &self.lut,
            );
            self.report.op_mix.record(cat);
            if op.instr.is_mem() {
                self.lsq_used -= 1;
            }
            self.ifos[head_idx].committed = true;
            self.committed_total += 1;
            if S::ENABLED {
                sink.record(
                    self.cycle,
                    &PipeEvent::Writeback {
                        seq: op.seq,
                        done_cycle,
                    },
                );
                sink.record(
                    self.cycle,
                    &PipeEvent::Commit {
                        seq: op.seq,
                        pc: op.pc,
                    },
                );
            }
        }
        // Retire old entries lazily, keeping a window behind the head so
        // chain statistics and RAT references stay resolvable.
        let lag = u64::from(self.config.rob_entries) + 64;
        while self.base_seq + lag < self.committed_total {
            let gone = self.ifos.pop_front().expect("window non-empty");
            debug_assert!(gone.committed);
            if gone.chain_len >= 2 && !gone.chain_extended {
                self.report.chains.record(gone.chain_len);
            }
            self.base_seq += 1;
        }
    }

    /// Flush remaining chain records at end of simulation.
    fn drain_chain_stats(&mut self) {
        while let Some(gone) = self.ifos.pop_front() {
            if gone.chain_len >= 2 && !gone.chain_extended {
                self.report.chains.record(gone.chain_len);
            }
            self.base_seq += 1;
        }
    }
}

/// Convenience: simulate `trace` on `config`.
///
/// # Errors
///
/// Propagates [`SimError`] from construction or the run.
pub fn simulate(
    trace: impl Iterator<Item = DynOp>,
    config: CoreConfig,
) -> Result<SimReport, SimError> {
    Simulator::new(config)?.run(trace)
}

/// Convenience: simulate `trace` on `config`, streaming pipeline events
/// into `sink` (see [`Simulator::run_events`]).
///
/// # Errors
///
/// Propagates [`SimError`] from construction or the run.
pub fn simulate_events<S: EventSink>(
    trace: impl Iterator<Item = DynOp>,
    config: CoreConfig,
    sink: &mut S,
) -> Result<SimReport, SimError> {
    Simulator::new(config)?.run_events(trace, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use redsoc_isa::prelude::*;

    /// Long dependent chain of high-slack logic ops — the best case for
    /// slack recycling.
    fn logic_chain_trace(n: u64) -> Vec<DynOp> {
        let mut ops = Vec::new();
        for i in 0..n {
            let instr = Instr::Alu {
                op: AluOp::Eor,
                dst: Some(r(1)),
                src1: Some(r(1)),
                op2: Operand2::Imm(0x55),
                set_flags: false,
            };
            let mut d = DynOp::simple(i, (i % 64) as u32 * 4, instr);
            d.eff_bits = 8;
            ops.push(d);
        }
        ops.push(DynOp::simple(n, (n % 64) as u32 * 4, Instr::Halt));
        ops
    }

    /// Independent ops: no chains, ILP-limited.
    fn independent_trace(n: u64) -> Vec<DynOp> {
        let mut ops = Vec::new();
        for i in 0..n {
            let instr = Instr::Alu {
                op: AluOp::Add,
                dst: Some(r((i % 8) as u8)),
                src1: Some(r(8 + (i % 8) as u8)),
                op2: Operand2::Imm(1),
                set_flags: false,
            };
            ops.push(DynOp::simple(i, (i % 16) as u32 * 4, instr));
        }
        ops.push(DynOp::simple(n, 0, Instr::Halt));
        ops
    }

    fn run_mode(trace: &[DynOp], sched: SchedulerConfig) -> SimReport {
        let config = CoreConfig::big().with_sched(sched);
        simulate(trace.iter().copied(), config).expect("simulation succeeds")
    }

    #[test]
    fn baseline_dependent_chain_is_one_ipc() {
        let trace = logic_chain_trace(2000);
        let rep = run_mode(&trace, SchedulerConfig::baseline());
        assert_eq!(rep.committed, 2001);
        // A dependent single-cycle chain commits ~1 instruction per cycle.
        let ipc = rep.ipc();
        assert!((0.85..=1.05).contains(&ipc), "baseline chain IPC {ipc}");
        assert_eq!(rep.recycled_ops, 0, "baseline must not recycle");
    }

    #[test]
    fn redsoc_accelerates_dependent_logic_chain() {
        let trace = logic_chain_trace(2000);
        let base = run_mode(&trace, SchedulerConfig::baseline());
        let red = run_mode(&trace, SchedulerConfig::redsoc());
        let speedup = red.speedup_over(&base);
        // EOR (~160 ps) leaves >60% slack; transparent chaining should pack
        // 2-3 dependent ops per cycle.
        assert!(speedup > 1.5, "expected large chain speedup, got {speedup}");
        assert!(
            red.recycled_ops > 500,
            "recycling should dominate: {}",
            red.recycled_ops
        );
        assert!(red.chains.sequences() > 0, "chains should be recorded");
        assert!(red.chains.weighted_mean() >= 2.0);
    }

    #[test]
    fn redsoc_does_not_slow_down_independent_code() {
        let trace = independent_trace(2000);
        let base = run_mode(&trace, SchedulerConfig::baseline());
        let red = run_mode(&trace, SchedulerConfig::redsoc());
        let speedup = red.speedup_over(&base);
        assert!(
            speedup > 0.95,
            "independent code must not regress: {speedup}"
        );
    }

    #[test]
    fn mos_fuses_short_logic_pairs() {
        let trace = logic_chain_trace(2000);
        let base = run_mode(&trace, SchedulerConfig::baseline());
        let mos = run_mode(&trace, SchedulerConfig::mos());
        let speedup = mos.speedup_over(&base);
        // Two EORs fit one cycle, so MOS roughly doubles chain throughput.
        assert!(speedup > 1.3, "MOS should fuse logic pairs: {speedup}");
    }

    /// Dependent chain of wide adds: each takes ~7/8 of a cycle, so
    /// transparent execution always crosses clock boundaries.
    fn add_chain_trace(n: u64) -> Vec<DynOp> {
        let mut ops = Vec::new();
        for i in 0..n {
            let instr = Instr::Alu {
                op: AluOp::Add,
                dst: Some(r(1)),
                src1: Some(r(1)),
                op2: Operand2::Imm(3),
                set_flags: false,
            };
            let mut d = DynOp::simple(i, (i % 32) as u32 * 4, instr);
            d.eff_bits = 31; // wide: opcode slack only
            ops.push(d);
        }
        ops.push(DynOp::simple(n, 0, Instr::Halt));
        ops
    }

    #[test]
    fn redsoc_beats_mos_on_arith_chains() {
        // ADD chains: two ADDs (400+ ps each) never fit one cycle, so MOS
        // gains nothing, while ReDSOC still recycles the ~60 ps tails.
        let ops = add_chain_trace(3000);
        let base = run_mode(&ops, SchedulerConfig::baseline());
        let mos = run_mode(&ops, SchedulerConfig::mos());
        let red = run_mode(&ops, SchedulerConfig::redsoc());
        let mos_sp = mos.speedup_over(&base);
        let red_sp = red.speedup_over(&base);
        assert!(mos_sp < 1.05, "MOS cannot fuse wide adds: {mos_sp}");
        assert!(
            red_sp > mos_sp + 0.05,
            "ReDSOC {red_sp} should beat MOS {mos_sp}"
        );
    }

    #[test]
    fn chains_cross_cycle_boundaries_with_two_cycle_holds() {
        // Logic pairs (3+3 ticks) finish inside one cycle — no crossings.
        let logic = run_mode(&logic_chain_trace(3000), SchedulerConfig::redsoc());
        assert_eq!(logic.two_cycle_holds, 0, "logic pairs fit within a cycle");
        // Wide-add chains (7 ticks each) cross on every transparent link.
        let adds = run_mode(&add_chain_trace(3000), SchedulerConfig::redsoc());
        assert!(
            adds.two_cycle_holds > 500,
            "crossing adds must hold FUs twice: {}",
            adds.two_cycle_holds
        );
    }

    #[test]
    fn small_core_recycles_less_than_big() {
        let trace = logic_chain_trace(3000);
        let base_b = run_mode(&trace, SchedulerConfig::baseline());
        let red_b = run_mode(&trace, SchedulerConfig::redsoc());
        let cfg_s = CoreConfig::small().with_sched(SchedulerConfig::baseline());
        let base_s = simulate(trace.iter().copied(), cfg_s).unwrap();
        let cfg_s = CoreConfig::small().with_sched(SchedulerConfig::redsoc());
        let red_s = simulate(trace.iter().copied(), cfg_s).unwrap();
        let sp_big = red_b.speedup_over(&base_b);
        let sp_small = red_s.speedup_over(&base_s);
        assert!(
            sp_big >= sp_small - 0.05,
            "bigger cores should benefit at least as much: big {sp_big} small {sp_small}"
        );
    }

    #[test]
    fn memory_ops_flow_through_with_forwarding() {
        // store then load to the same address: must forward, not deadlock.
        let mut ops = Vec::new();
        let store = Instr::Store {
            src: r(1),
            base: r(0),
            offset: 0,
            width: MemWidth::B4,
        };
        let load = Instr::Load {
            dst: r(2),
            base: r(0),
            offset: 0,
            width: MemWidth::B4,
        };
        for i in 0..200u64 {
            let mut s = DynOp::simple(2 * i, 0x100, store);
            s.eff_addr = Some(0x2000 + ((i as u32 % 8) * 4));
            ops.push(s);
            let mut l = DynOp::simple(2 * i + 1, 0x104, load);
            l.eff_addr = Some(0x2000 + ((i as u32 % 8) * 4));
            ops.push(l);
        }
        ops.push(DynOp::simple(400, 0, Instr::Halt));
        let rep = run_mode(&ops, SchedulerConfig::redsoc());
        assert_eq!(rep.committed, 401);
    }

    #[test]
    fn branches_cost_cycles_when_mispredicted() {
        // Deterministically random branch directions.
        let mut x = 99u64;
        let mut mk = |n: u64, random: bool| {
            let mut ops = Vec::new();
            for i in 0..n {
                let cmp = Instr::Alu {
                    op: AluOp::Cmp,
                    dst: None,
                    src1: Some(r(1)),
                    op2: Operand2::Imm(0),
                    set_flags: true,
                };
                ops.push(DynOp::simple(2 * i, 0x40, cmp));
                let br = Instr::Branch {
                    cond: Cond::Ne,
                    target: LabelId::new(0),
                };
                let mut b = DynOp::simple(2 * i + 1, 0x44, br);
                b.taken = if random {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x & 1 == 1
                } else {
                    true
                };
                ops.push(b);
            }
            ops.push(DynOp::simple(2 * n, 0, Instr::Halt));
            ops
        };
        let predictable = mk(500, false);
        let unpredictable = mk(500, true);
        let p = run_mode(&predictable, SchedulerConfig::baseline());
        let u = run_mode(&unpredictable, SchedulerConfig::baseline());
        assert!(
            u.cycles > p.cycles + 500,
            "mispredictions must cost cycles: {} vs {}",
            u.cycles,
            p.cycles
        );
        assert!(u.branch.mispredict_rate() > 0.2);
        assert!(p.branch.mispredict_rate() < 0.05);
    }

    #[test]
    fn deadlock_guard_reports_not_hangs() {
        // An empty trace terminates immediately (not a deadlock).
        let rep = run_mode(
            &[DynOp::simple(0, 0, Instr::Halt)],
            SchedulerConfig::redsoc(),
        );
        assert_eq!(rep.committed, 1);
    }

    /// Build a simulator with one in-flight op that can never issue: the
    /// watchdog must fire instead of spinning forever.
    fn stuck_simulator() -> Simulator {
        use crate::events::NullSink;
        let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
        let mut sim = Simulator::new(config).expect("valid config");
        let instr = Instr::Alu {
            op: AluOp::Add,
            dst: Some(r(0)),
            src1: Some(r(1)),
            op2: Operand2::Imm(1),
            set_flags: false,
        };
        sim.allocate(DynOp::simple(0, 0, instr), &mut NullSink);
        sim.ifos[0].earliest_req = u64::MAX; // never requests selection
        sim.fetch_stopped = true;
        sim
    }

    #[test]
    fn watchdog_fires_on_stuck_pipeline_with_event_dump() {
        use crate::events::RingSink;
        let mut ring = RingSink::new(64);
        let err = stuck_simulator()
            .run_events(std::iter::empty(), &mut ring)
            .expect_err("stuck pipeline must deadlock, not hang");
        let SimError::Deadlock {
            cycle,
            committed,
            recent_events,
        } = err.clone()
        else {
            panic!("expected Deadlock, got {err:?}");
        };
        assert!(cycle > 100_000, "watchdog threshold: fired at {cycle}");
        assert_eq!(committed, 0);
        // The ring collapses the 100k-cycle stall run, so the dispatch that
        // preceded it survives in the dump alongside the stall summary.
        assert!(
            recent_events.iter().any(|e| e.contains("StallCycle")),
            "diagnostic must show the stall run: {recent_events:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("no commit progress"));
        assert!(msg.contains("pipeline events"));
    }

    #[test]
    fn watchdog_without_events_reports_empty_dump() {
        let err = stuck_simulator()
            .run(std::iter::empty())
            .expect_err("stuck pipeline must deadlock");
        let SimError::Deadlock { recent_events, .. } = &err else {
            panic!("expected Deadlock, got {err:?}");
        };
        assert!(recent_events.is_empty(), "NullSink retains nothing");
        assert!(err.to_string().contains("events were disabled"));
    }

    #[test]
    fn stall_attribution_partitions_cycles() {
        for sched in [
            SchedulerConfig::baseline(),
            SchedulerConfig::redsoc(),
            SchedulerConfig::mos(),
        ] {
            let rep = run_mode(&logic_chain_trace(2000), sched);
            assert_eq!(
                rep.stalls.total(),
                rep.cycles,
                "stall categories must partition cycles: {:?}",
                rep.stalls
            );
            assert!(rep.stalls.busy > 0, "a committing run has busy cycles");
        }
        // The empty-trace edge case: one reported cycle, one charge.
        let rep = run_mode(
            &[DynOp::simple(0, 0, Instr::Halt)],
            SchedulerConfig::redsoc(),
        );
        assert_eq!(rep.stalls.total(), rep.cycles);
    }

    #[test]
    fn event_sinks_do_not_perturb_the_simulation() {
        use crate::events::{PipeEvent, VecSink};
        let trace = logic_chain_trace(500);
        let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
        let quiet = Simulator::new(config.clone())
            .unwrap()
            .run(trace.iter().copied())
            .unwrap();
        let mut sink = VecSink::new();
        let traced = Simulator::new(config)
            .unwrap()
            .run_events(trace.iter().copied(), &mut sink)
            .unwrap();
        assert_eq!(
            format!("{quiet:?}"),
            format!("{traced:?}"),
            "recording events must not change any statistic"
        );
        let commits = sink
            .events
            .iter()
            .filter(|(_, e)| matches!(e, PipeEvent::Commit { .. }))
            .count() as u64;
        assert_eq!(commits, traced.committed, "one commit event per retire");
        let issues = sink
            .events
            .iter()
            .filter(|(_, e)| matches!(e, PipeEvent::Issue { .. }))
            .count() as u64;
        assert!(issues >= traced.committed, "every committed op issued");
        // Events arrive in non-decreasing cycle order.
        assert!(sink.events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn skewed_select_eliminates_gp_mispeculation() {
        let trace = logic_chain_trace(2000);
        let red = run_mode(&trace, SchedulerConfig::redsoc());
        assert_eq!(
            red.gp_mispeculations, 0,
            "skewed global arbitration precludes GP-mispeculation"
        );
        let mut unskewed = SchedulerConfig::redsoc();
        unskewed.skewed_select = false;
        let r2 = run_mode(&trace, unskewed);
        // Unskewed may or may not mispeculate on this trace, but it must
        // never be faster than the skewed design.
        assert!(r2.cycles + 2 >= red.cycles);
    }

    #[test]
    fn precision_sweep_saturates_around_3_bits() {
        // Wide adds (~435 ps) quantise to a full cycle below 3 bits of CI
        // precision, so coarse quantisation forfeits all recycling — the
        // paper's finding that performance saturates at 3 bits (§V).
        let trace = add_chain_trace(3000);
        let mut cycles = Vec::new();
        for bits in 1..=6u8 {
            let mut s = SchedulerConfig::redsoc();
            s.ci_bits = bits;
            let tpc = 1u64 << bits;
            s.threshold_ticks = tpc - 1; // equally aggressive at every precision
            cycles.push(run_mode(&trace, s).cycles);
        }
        // 3 bits is within a few percent of 6 bits…
        let c3 = cycles[2] as f64;
        let c6 = cycles[5] as f64;
        assert!((c3 - c6).abs() / c6 < 0.08, "3-bit {c3} vs 6-bit {c6}");
        // …while 1–2 bits quantise the add to a full cycle and lose the win.
        assert!(
            cycles[0] > cycles[2],
            "1-bit {} vs 3-bit {}",
            cycles[0],
            cycles[2]
        );
        assert!(
            cycles[1] > cycles[2],
            "2-bit {} vs 3-bit {}",
            cycles[1],
            cycles[2]
        );
    }

    #[test]
    fn cycle_budget_cancels_a_long_run() {
        let trace = logic_chain_trace(50_000);
        let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
        let err = Simulator::new(config)
            .expect("valid config")
            .with_cancel(CancelToken::with_budget(512))
            .run(trace.into_iter())
            .expect_err("budget must cancel the run");
        match err {
            SimError::Cancelled {
                cycle, committed, ..
            } => {
                // Polled every 1024 cycles, so detection lands on the next
                // multiple of 1024 at or after the budget.
                assert!((512..=2048).contains(&cycle), "cancelled at {cycle}");
                assert!(committed < 50_000);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn external_cancel_flag_stops_the_run_immediately() {
        let trace = logic_chain_trace(5_000);
        let token = CancelToken::new();
        token.cancel();
        let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
        let err = Simulator::new(config)
            .expect("valid config")
            .with_cancel(token)
            .run(trace.into_iter())
            .expect_err("pre-cancelled token must stop the run");
        assert!(matches!(err, SimError::Cancelled { cycle: 0, .. }));
    }

    #[test]
    fn unattached_token_runs_to_completion() {
        let trace = logic_chain_trace(2_000);
        let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
        let rep = Simulator::new(config)
            .expect("valid config")
            .with_cancel(CancelToken::new())
            .run(trace.into_iter())
            .expect("no budget, no cancel: must complete");
        assert_eq!(rep.committed, 2_001);
    }

    #[test]
    fn configured_deadlock_threshold_is_validated_at_construction() {
        let mut config = CoreConfig::big();
        config.deadlock_cycles = 0;
        assert!(matches!(
            Simulator::new(config),
            Err(SimError::BadConfig(_))
        ));
    }
}
