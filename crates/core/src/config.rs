//! Core and scheduler configuration (paper Table I).

use redsoc_mem::{CacheConfig, MemLatencies, MemModelConfig};
use redsoc_timing::Quant;

/// Which scheduling mechanism the simulated core runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Conventional out-of-order scheduling: every single-cycle operation
    /// completes at a clock boundary; no slack is recycled.
    Baseline,
    /// ReDSOC: slack-aware scheduling with transparent dataflow, eager
    /// grandparent wakeup and skewed selection (§III–IV).
    Redsoc,
    /// MOS — "Multiple Operations in Single-cycle": dynamic operation
    /// fusion of dependent ops that jointly fit in one clock period
    /// (the paper's §VI-D comparison point).
    Mos,
}

/// Scheduler options (the paper's design knobs and ablation axes).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Scheduling mechanism.
    pub mode: SchedMode,
    /// Completion-Instant precision in bits (paper: 3, saturating).
    pub ci_bits: u8,
    /// Slack threshold in CI ticks: a grandparent-woken consumer issues
    /// early only when its parent's completion instant falls at or below
    /// this tick within the cycle (§IV-C). Tuned per application class by
    /// sweep in the paper.
    pub threshold_ticks: u64,
    /// Prioritise non-speculative over grandparent-speculative select
    /// requests (§IV-D). Turning this off exposes GP-mispeculation.
    pub skewed_select: bool,
    /// Enable eager grandparent wakeup (§IV-B). Without it, slack is only
    /// recycled across boundary-crossing producers.
    pub egpw: bool,
    /// Last-arriving-operand tag predictor entries (operational design,
    /// §IV-C; paper uses 1K).
    pub tag_predictor_entries: usize,
    /// Data-width predictor entries (§II-B; paper uses 4K).
    pub width_predictor_entries: usize,
    /// Penalty cycles charged when a last-arrival tag prediction is wrong
    /// (recovery "identical to latency mispredictions but lower penalty").
    pub tag_mispredict_penalty: u32,
    /// Penalty cycles for an aggressive width misprediction (selective
    /// reissue, like a cache-miss replay).
    pub width_replay_penalty: u32,
    /// Exploit the PVT guard band on top of data slack (§V): critical-path
    /// monitors near the ALUs recalibrate the slack LUT every 10k cycles.
    /// Off by default — the paper's headline numbers isolate data slack at
    /// the worst-case PVT corner.
    pub pvt_guard_band: bool,
}

impl SchedulerConfig {
    /// The paper's ReDSOC operating point.
    #[must_use]
    pub fn redsoc() -> Self {
        SchedulerConfig {
            mode: SchedMode::Redsoc,
            ci_bits: 3,
            threshold_ticks: 7,
            skewed_select: true,
            egpw: true,
            tag_predictor_entries: 1024,
            width_predictor_entries: 4096,
            tag_mispredict_penalty: 2,
            width_replay_penalty: 3,
            pvt_guard_band: false,
        }
    }

    /// Conventional baseline scheduling.
    #[must_use]
    pub fn baseline() -> Self {
        SchedulerConfig {
            mode: SchedMode::Baseline,
            ..SchedulerConfig::redsoc()
        }
    }

    /// The MOS operation-fusion comparator.
    #[must_use]
    pub fn mos() -> Self {
        SchedulerConfig {
            mode: SchedMode::Mos,
            ..SchedulerConfig::redsoc()
        }
    }

    /// The CI quantiser implied by `ci_bits`.
    #[must_use]
    pub fn quant(&self) -> Quant {
        Quant::new(self.ci_bits)
    }
}

/// Default deadlock-watchdog threshold in commit-free cycles.
pub const DEFAULT_DEADLOCK_CYCLES: u64 = 100_000;

/// Full core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Human-readable name ("small" / "medium" / "big").
    pub name: &'static str,
    /// Front-end (fetch/decode/rename/commit) width, instructions/cycle.
    pub frontend_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load/store-queue entries.
    pub lsq_entries: u32,
    /// Reservation-station entries.
    pub rse_entries: u32,
    /// Integer ALUs (also execute branches; multiplies/divides occupy an
    /// ALU's issue slot).
    pub alu_units: u32,
    /// SIMD units.
    pub simd_units: u32,
    /// FP units.
    pub fp_units: u32,
    /// Load/store address-generation ports.
    pub mem_ports: u32,
    /// Fetch-to-dispatch pipeline depth in cycles.
    pub frontend_depth: u32,
    /// Branch misprediction redirect penalty in cycles (on top of waiting
    /// for the branch to resolve).
    pub mispredict_penalty: u32,
    /// L1 data-cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// Cache/DRAM latencies.
    pub mem_latencies: MemLatencies,
    /// Enable the stride prefetcher (Table I: on).
    pub prefetch: bool,
    /// Which memory timing model services loads and stores. The default
    /// [`MemModelConfig::Classic`] is cycle-identical to the pre-port
    /// simulator; `Contended` adds MSHR/port/bandwidth hazards.
    pub mem_model: MemModelConfig,
    /// Deadlock-watchdog threshold: the simulator reports
    /// [`SimError::Deadlock`](crate::pipeline::SimError) after this many cycles
    /// without a single commit. Must be large enough that a worst-case
    /// legitimate stall (DRAM miss chains, drained front end) cannot trip
    /// it; validation rejects values below 1000 and above one billion.
    pub deadlock_cycles: u64,
    /// Scheduler options.
    pub sched: SchedulerConfig,
}

impl CoreConfig {
    /// Table I "Small": 3-wide, 40/16/32 ROB/LSQ/RSE, 3/2/2 ALU/SIMD/FP.
    #[must_use]
    pub fn small() -> Self {
        CoreConfig {
            name: "small",
            frontend_width: 3,
            rob_entries: 40,
            lsq_entries: 16,
            rse_entries: 32,
            alu_units: 3,
            simd_units: 2,
            fp_units: 2,
            mem_ports: 2,
            frontend_depth: 5,
            mispredict_penalty: 8,
            l1: CacheConfig::l1_64k(),
            l2: CacheConfig::l2_2m(),
            mem_latencies: MemLatencies::default(),
            prefetch: true,
            mem_model: MemModelConfig::Classic,
            deadlock_cycles: DEFAULT_DEADLOCK_CYCLES,
            sched: SchedulerConfig::baseline(),
        }
    }

    /// Table I "Medium": 4-wide, 80/32/64, 4/3/3.
    #[must_use]
    pub fn medium() -> Self {
        CoreConfig {
            name: "medium",
            frontend_width: 4,
            rob_entries: 80,
            lsq_entries: 32,
            rse_entries: 64,
            alu_units: 4,
            simd_units: 3,
            fp_units: 3,
            ..CoreConfig::small()
        }
    }

    /// Table I "Big": 8-wide, 160/64/128, 6/4/4.
    #[must_use]
    pub fn big() -> Self {
        CoreConfig {
            name: "big",
            frontend_width: 8,
            rob_entries: 160,
            lsq_entries: 64,
            rse_entries: 128,
            alu_units: 6,
            simd_units: 4,
            fp_units: 4,
            mem_ports: 3,
            ..CoreConfig::small()
        }
    }

    /// The three Table I cores, smallest first.
    #[must_use]
    pub fn table1() -> [CoreConfig; 3] {
        [CoreConfig::small(), CoreConfig::medium(), CoreConfig::big()]
    }

    /// Replace the scheduler configuration (builder-style).
    #[must_use]
    pub fn with_sched(mut self, sched: SchedulerConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Replace the memory model (builder-style).
    #[must_use]
    pub fn with_mem_model(mut self, mem_model: MemModelConfig) -> Self {
        self.mem_model = mem_model;
        self
    }

    /// Validate structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.frontend_width == 0 {
            return Err("frontend width must be positive".into());
        }
        if self.rob_entries < self.frontend_width {
            return Err("ROB must hold at least one fetch group".into());
        }
        if self.rse_entries == 0 || self.lsq_entries == 0 {
            return Err("RSE/LSQ must be non-empty".into());
        }
        if self.alu_units == 0 {
            return Err("need at least one ALU".into());
        }
        self.l1.validate().map_err(|e| format!("l1: {e}"))?;
        self.l2.validate().map_err(|e| format!("l2: {e}"))?;
        if !(1..=8).contains(&self.sched.ci_bits) {
            return Err("CI precision must be 1..=8 bits".into());
        }
        if self.sched.threshold_ticks > self.sched.quant().ticks_per_cycle() {
            return Err("threshold cannot exceed one cycle".into());
        }
        if self.deadlock_cycles < 1_000 {
            return Err(format!(
                "deadlock watchdog threshold {} is too small: legitimate \
                 stalls (DRAM miss chains) span thousands of cycles; use \
                 at least 1000",
                self.deadlock_cycles
            ));
        }
        if self.deadlock_cycles > 1_000_000_000 {
            return Err(format!(
                "deadlock watchdog threshold {} is absurd (> 1e9): the \
                 watchdog would never fire within a practical run",
                self.deadlock_cycles
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_match_paper() {
        let [s, m, b] = CoreConfig::table1();
        assert_eq!(
            (
                s.frontend_width,
                s.rob_entries,
                s.lsq_entries,
                s.rse_entries
            ),
            (3, 40, 16, 32)
        );
        assert_eq!((s.alu_units, s.simd_units, s.fp_units), (3, 2, 2));
        assert_eq!(
            (
                m.frontend_width,
                m.rob_entries,
                m.lsq_entries,
                m.rse_entries
            ),
            (4, 80, 32, 64)
        );
        assert_eq!((m.alu_units, m.simd_units, m.fp_units), (4, 3, 3));
        assert_eq!(
            (
                b.frontend_width,
                b.rob_entries,
                b.lsq_entries,
                b.rse_entries
            ),
            (8, 160, 64, 128)
        );
        assert_eq!((b.alu_units, b.simd_units, b.fp_units), (6, 4, 4));
        for c in [&s, &m, &b] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn sched_presets() {
        assert_eq!(SchedulerConfig::redsoc().mode, SchedMode::Redsoc);
        assert_eq!(SchedulerConfig::baseline().mode, SchedMode::Baseline);
        assert_eq!(SchedulerConfig::mos().mode, SchedMode::Mos);
        assert_eq!(SchedulerConfig::redsoc().quant().ticks_per_cycle(), 8);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = CoreConfig::small();
        c.alu_units = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::small();
        c.sched.ci_bits = 9;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::small();
        c.sched.threshold_ticks = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn mem_model_defaults_to_classic_and_builds() {
        let c = CoreConfig::small();
        assert_eq!(c.mem_model, MemModelConfig::Classic);
        let contended = CoreConfig::small().with_mem_model(MemModelConfig::Contended(
            redsoc_mem::ContendedConfig::default(),
        ));
        contended.validate().unwrap();
        assert_eq!(contended.mem_model.label(), "contended");
    }

    #[test]
    fn validation_rejects_bad_cache_geometry() {
        let mut c = CoreConfig::small();
        c.l1.size_bytes = 1000; // not a multiple of ways*line
        let err = c.validate().unwrap_err();
        assert!(err.starts_with("l1:"), "got: {err}");
        let mut c = CoreConfig::small();
        c.l2.line_bytes = 48;
        assert!(c.validate().unwrap_err().starts_with("l2:"));
    }

    #[test]
    fn validation_bounds_the_deadlock_watchdog() {
        let mut c = CoreConfig::small();
        assert_eq!(c.deadlock_cycles, DEFAULT_DEADLOCK_CYCLES);
        c.deadlock_cycles = 0;
        assert!(c.validate().is_err(), "zero threshold must be rejected");
        c.deadlock_cycles = 999;
        assert!(c.validate().is_err(), "sub-1000 threshold must be rejected");
        c.deadlock_cycles = 2_000_000_000;
        assert!(c.validate().is_err(), "absurd threshold must be rejected");
        c.deadlock_cycles = 1_000;
        assert!(c.validate().is_ok());
        c.deadlock_cycles = 1_000_000_000;
        assert!(c.validate().is_ok());
    }
}
