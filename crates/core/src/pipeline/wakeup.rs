//! Event-driven wakeup bookkeeping: per-pool ready sets and an
//! `earliest_req` timer wheel.
//!
//! The issue stage used to re-scan every reservation-station entry every
//! cycle to rebuild the select requests — O(window) work per cycle even
//! when nothing changed. This module replaces the scan with explicit
//! readiness tracking so `select_and_issue` touches only entries that
//! can actually bid: **O(ready + broadcasts)** per cycle.
//!
//! Three structures, all owned by [`PipelineState`]:
//!
//! - **Ready sets** (`ready`, one `Vec<u64>` per [`PoolKind`]): the
//!   candidate entries whose `earliest_req` has passed and whose
//!   [`Scheduler::wakeup`] hook answered `Some` when last examined.
//!   Membership is mirrored by [`Ifo::in_ready`] so an entry is never
//!   inserted twice. Members are re-evaluated each cycle (a speculative
//!   EGPW request upgrades to non-speculative when the parent issues), and
//!   removed only when they issue or defer — at which point the wheel is
//!   armed, so **no entry is ever silently dropped from wakeup**.
//! - **Timer wheel** (`wheel` + `far`): "re-examine entry `s` at cycle
//!   `t`" alarms. Arms within `WHEEL_SLOTS` cycles go to a ring slot;
//!   farther arms (DRAM-class waits on exotic configs, or the
//!   `earliest_req = u64::MAX` used by tests to park an entry forever)
//!   overflow into a `BTreeMap` drained by due date.
//! - **Broadcast subscriptions** ([`Ifo::waiters`]): at dispatch a
//!   consumer subscribes to each still-unissued producer among
//!   `srcs ∪ {gp_tag}`. When the producer issues (the CI-bus broadcast)
//!   its waiter list is drained exactly once, arming each waiter at that
//!   operand's select-ready threshold — which bakes in per-consumer lead
//!   times such as the VMLA multiply-operand offset.
//!
//! Alarms fire for *candidates*, not certainties: a due entry whose
//! wakeup hook still answers `None` is re-armed at the earliest future
//! select-ready threshold among its issued operands
//! (`PipelineState::wakeup_sleep_plan`); if no such threshold exists and
//! no operand subscription is pending either — possible only for a wakeup
//! hook that violates the purity contract documented on
//! [`Scheduler::wakeup`] — the entry degrades to per-cycle polling rather
//! than being dropped.
//!
//! All scratch buffers (`requests`, `granted`, wheel slots, subscription
//! staging) persist across cycles, so the steady-state issue loop
//! performs **zero heap allocations** — asserted by a counting allocator
//! in this module's tests.
//!
//! The legacy full-window scan is kept behind the `scan-wakeup` feature
//! (see [`Simulator::with_scan_wakeup`]) for differential testing; the
//! golden-fixture suite proves the two paths emit byte-identical event
//! streams.
//!
//! [`Scheduler::wakeup`]: crate::sched::Scheduler::wakeup
//! [`Ifo::in_ready`]: super::state::Ifo
//! [`Ifo::waiters`]: super::state::Ifo
//! [`Simulator::with_scan_wakeup`]: super::Simulator
//! [`PoolKind`]: crate::fu::PoolKind

// Invariant `expect`s in this module are deliberate: each one guards a
// structural pipeline invariant that only a simulator bug can violate
// (never operator input), and a loud abort — isolated and quarantined
// per job by the bench supervisor — beats silently corrupting a
// result. The per-cycle hot path stays `Result`-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::mem;

use crate::fu::PoolKind;
use crate::sched::{Scheduler, SelectRequest};

use super::state::PipelineState;

/// Pool iteration order of the issue stage — fixed, as the select
/// arbiters are physically separate; also the index space of the per-pool
/// arrays below.
pub(crate) const POOLS: [PoolKind; 4] =
    [PoolKind::Alu, PoolKind::Simd, PoolKind::Fp, PoolKind::Mem];

/// Direct index of a pool in the per-pool arrays (the old linear
/// `requests.iter_mut().find(|(k, _)| *k == pool)` lookup, retired).
pub(crate) fn pool_index(kind: PoolKind) -> usize {
    match kind {
        PoolKind::Alu => 0,
        PoolKind::Simd => 1,
        PoolKind::Fp => 2,
        PoolKind::Mem => 3,
    }
}

/// Near-horizon size of the timer wheel. One slot per future cycle;
/// covers every latency the default memory hierarchy can produce (DRAM is
/// 120 cycles). Anything farther lands in the `far` overflow map.
const WHEEL_SLOTS: u64 = 512;

/// The event-driven wakeup state and the issue stage's persistent scratch
/// buffers. See the [module docs](self) for the design.
#[derive(Debug)]
pub(crate) struct WakeupState {
    /// Per-pool candidate sets (unordered; requests are sorted by seq
    /// before select). Mirrored by `Ifo::in_ready`.
    pub(crate) ready: [Vec<u64>; 4],
    /// Near timer wheel: slot `t % WHEEL_SLOTS` holds entries to
    /// re-examine at cycle `t`.
    wheel: Vec<Vec<u64>>,
    /// Far arms, keyed by due cycle.
    far: BTreeMap<u64, Vec<u64>>,
    /// Per-pool select-request scratch, reused every cycle.
    pub(crate) requests: [Vec<SelectRequest>; 4],
    /// Seqs granted so far this cycle (the EGPW parent-issued check),
    /// reused every cycle.
    pub(crate) granted: Vec<u64>,
    /// Staging for dispatch-time subscription tags.
    sub_scratch: Vec<u64>,
}

impl WakeupState {
    pub(crate) fn new() -> Self {
        WakeupState {
            ready: Default::default(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            far: BTreeMap::new(),
            requests: Default::default(),
            granted: Vec::new(),
            sub_scratch: Vec::new(),
        }
    }

    /// Export the persistent wakeup state — ready sets, every wheel slot
    /// (by index), and the far map — for snapshotting. The per-cycle
    /// scratch buffers (`requests`, `granted`, `sub_scratch`) are logically
    /// empty between cycles, which is the only point a snapshot is taken;
    /// they are excluded and restore empty.
    pub(crate) fn export_state(&self) -> WakeupSnapshot {
        debug_assert!(self.granted.is_empty(), "snapshot mid-issue");
        debug_assert!(self.sub_scratch.is_empty(), "snapshot mid-dispatch");
        WakeupSnapshot {
            ready: self.ready.clone(),
            wheel: self.wheel.clone(),
            far: self.far.iter().map(|(&k, v)| (k, v.clone())).collect(),
        }
    }

    /// Restore state captured by `export_state`. Scratch buffers restore
    /// empty. Fails if the wheel slot count differs (a snapshot from a
    /// build with a different `WHEEL_SLOTS`).
    pub(crate) fn import_state(&mut self, snap: WakeupSnapshot) -> Result<(), String> {
        if snap.wheel.len() != self.wheel.len() {
            return Err(format!(
                "timer wheel mismatch: snapshot has {} slots, build uses {}",
                snap.wheel.len(),
                self.wheel.len()
            ));
        }
        self.ready = snap.ready;
        self.wheel = snap.wheel;
        self.far = snap.far.into_iter().collect();
        for r in &mut self.requests {
            r.clear();
        }
        self.granted.clear();
        self.sub_scratch.clear();
        Ok(())
    }
}

/// Serialized image of [`WakeupState`] (crate-internal snapshot plumbing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WakeupSnapshot {
    pub(crate) ready: [Vec<u64>; 4],
    pub(crate) wheel: Vec<Vec<u64>>,
    pub(crate) far: Vec<(u64, Vec<u64>)>,
}

impl PipelineState {
    /// Whether the legacy full-window scan drives the issue stage (the
    /// `scan-wakeup` differential-testing path). The event bookkeeping
    /// below no-ops in that mode so the two paths stay independent.
    #[inline]
    pub(crate) fn scan_mode(&self) -> bool {
        #[cfg(feature = "scan-wakeup")]
        {
            self.scan_wakeup
        }
        #[cfg(not(feature = "scan-wakeup"))]
        {
            false
        }
    }

    /// Arm the timer wheel: re-examine `seq` at cycle `at` (strictly in
    /// the future). Duplicate arms are fine — firing is idempotent.
    pub(crate) fn wakeup_arm(&mut self, seq: u64, at: u64) {
        if self.scan_mode() {
            return;
        }
        debug_assert!(at > self.cycle, "arm must target a future cycle");
        if at - self.cycle < WHEEL_SLOTS {
            self.wakeup.wheel[(at % WHEEL_SLOTS) as usize].push(seq);
        } else {
            self.wakeup.far.entry(at).or_default().push(seq);
        }
    }

    /// Dispatch-time hook: arm the initial `earliest_req` alarm and
    /// subscribe `consumer` to every still-unissued producer among its
    /// sources and grandparent tag.
    pub(crate) fn wakeup_on_dispatch(&mut self, consumer: u64) {
        if self.scan_mode() {
            return;
        }
        let at = self.ifo(consumer).expect("just dispatched").earliest_req;
        self.wakeup_arm(consumer, at);
        let mut tags = mem::take(&mut self.wakeup.sub_scratch);
        {
            let x = self.ifo(consumer).expect("just dispatched");
            tags.extend_from_slice(&x.srcs);
            if let Some(gp) = x.gp_tag {
                if !x.srcs.contains(&gp) {
                    tags.push(gp);
                }
            }
        }
        for &tag in &tags {
            if let Some(p) = self.ifo_mut(tag) {
                if !p.issued {
                    p.waiters.push(consumer);
                }
            }
        }
        tags.clear();
        self.wakeup.sub_scratch = tags;
    }

    /// Deferral hook: `try_issue` pushed `seq`'s `earliest_req` into the
    /// future (tag mispredict, GP mispeculation, or the defensive
    /// late-start hold). Re-arm so the entry re-enters the ready set at
    /// exactly that cycle; the end-of-cycle compaction removes it from the
    /// current set. A zero penalty leaves `earliest_req <= cycle`, in
    /// which case the entry simply stays ready.
    pub(crate) fn wakeup_defer(&mut self, seq: u64) {
        if self.scan_mode() {
            return;
        }
        let at = self
            .ifo(seq)
            .expect("deferred entry in flight")
            .earliest_req;
        if at > self.cycle {
            self.wakeup_arm(seq, at);
        }
    }

    /// CI-bus broadcast: `producer` has just issued. Drain its waiter
    /// list (exactly once — issue is permanent) and arm each waiter at
    /// the cycle this operand crosses its select-ready threshold for that
    /// specific consumer, never before the next cycle.
    pub(crate) fn wakeup_broadcast(&mut self, producer: u64) {
        if self.scan_mode() {
            return;
        }
        let Some(p) = self.ifo_mut(producer) else {
            return;
        };
        let waiters = mem::take(&mut p.waiters);
        for &cseq in &waiters {
            let r = {
                let Some(x) = self.ifo(cseq) else { continue };
                if x.issued || x.in_ready {
                    // Already bidding (or gone): the per-cycle ready-set
                    // re-evaluation sees the new broadcast by itself.
                    continue;
                }
                self.src_sel_ready(producer, x)
                    .unwrap_or(self.cycle + 1)
                    .max(self.cycle + 1)
            };
            self.wakeup_arm(cseq, r);
        }
    }

    /// Fire all alarms due at the current cycle, re-examining each
    /// candidate. Called at the top of the issue pass, before requests
    /// are gathered.
    pub(crate) fn wakeup_drain(&mut self, sched: &dyn Scheduler) {
        let t = self.cycle;
        // Far arms that have come due (rare: beyond-the-wheel waits).
        loop {
            let due = match self.wakeup.far.first_key_value() {
                Some((&k, _)) if k <= t => self.wakeup.far.pop_first().map(|(_, v)| v),
                _ => None,
            };
            let Some(seqs) = due else { break };
            for seq in seqs {
                self.wakeup_candidate(sched, seq);
            }
        }
        // The near slot for this cycle.
        let slot = (t % WHEEL_SLOTS) as usize;
        let mut due = mem::take(&mut self.wakeup.wheel[slot]);
        for &seq in due.iter() {
            self.wakeup_candidate(sched, seq);
        }
        due.clear();
        let cur = &mut self.wakeup.wheel[slot];
        if cur.is_empty() {
            *cur = due; // restore the warmed capacity
        } else {
            // Defensive: a re-arm landed exactly WHEEL_SLOTS ahead while
            // the slot was detached (unreachable for near arms, which
            // target strictly less than WHEEL_SLOTS cycles out).
            due.append(cur);
            *cur = due;
        }
    }

    /// Re-examine one candidate whose alarm fired: enter the ready set if
    /// its wakeup hook bids, otherwise plan the next look.
    fn wakeup_candidate(&mut self, sched: &dyn Scheduler, seq: u64) {
        let t = self.cycle;
        enum Action {
            Ready(usize),
            Rearm(u64),
            Sleep,
        }
        let action = {
            let Some(x) = self.ifo(seq) else { return };
            if x.issued || x.committed || x.in_ready {
                return; // stale alarm: already bidding, issued or retired
            }
            if x.earliest_req > t {
                Action::Rearm(x.earliest_req)
            } else if sched.wakeup(self, x).is_some() {
                Action::Ready(pool_index(x.pool))
            } else {
                Action::Sleep
            }
        };
        match action {
            Action::Ready(p) => {
                self.ifo_mut(seq).expect("entry in flight").in_ready = true;
                self.wakeup.ready[p].push(seq);
            }
            Action::Rearm(at) => self.wakeup_arm(seq, at),
            Action::Sleep => self.wakeup_sleep_plan(seq),
        }
    }

    /// `seq` cannot bid right now: arm at the earliest future cycle an
    /// already-issued operand crosses its select-ready threshold.
    /// Unissued operands re-arm us through their broadcast subscription.
    /// If neither exists — possible only for a wakeup hook outside the
    /// documented purity contract — degrade to per-cycle polling so the
    /// entry is never dropped.
    fn wakeup_sleep_plan(&mut self, seq: u64) {
        let t = self.cycle;
        let (next, has_unissued) = {
            let x = self.ifo(seq).expect("sleeping entry in flight");
            let mut next: Option<u64> = None;
            let mut has_unissued = false;
            let mut consider = |r: Option<u64>| match r {
                None => has_unissued = true,
                Some(r) if r > t => next = Some(next.map_or(r, |n| n.min(r))),
                Some(_) => {}
            };
            for &s in &x.srcs {
                consider(self.src_sel_ready(s, x));
            }
            if let Some(gp) = x.gp_tag {
                if !x.srcs.contains(&gp) {
                    consider(self.src_sel_ready(gp, x));
                }
            }
            (next, has_unissued)
        };
        match next {
            Some(at) => self.wakeup_arm(seq, at),
            None if has_unissued => {} // a broadcast will re-arm us
            None => self.wakeup_arm(seq, t + 1), // contract fallback: poll
        }
    }

    /// End-of-cycle compaction: drop entries that issued, retired or were
    /// deferred (`earliest_req` now in the future — their alarm is
    /// armed), clearing their `in_ready` mirror. In-place, no allocation.
    pub(crate) fn wakeup_compact(&mut self) {
        let t = self.cycle;
        for p in 0..POOLS.len() {
            let mut set = mem::take(&mut self.wakeup.ready[p]);
            let mut keep = 0;
            for i in 0..set.len() {
                let seq = set[i];
                let stays = self
                    .ifo(seq)
                    .is_some_and(|x| !x.issued && !x.committed && x.earliest_req <= t);
                if stays {
                    set[keep] = seq;
                    keep += 1;
                } else if let Some(x) = self.ifo_mut(seq) {
                    x.in_ready = false;
                }
            }
            set.truncate(keep);
            self.wakeup.ready[p] = set;
        }
    }

    /// Number of entries currently in pool `p`'s ready set (index per
    /// [`POOLS`]). Test-only visibility.
    #[cfg(test)]
    pub(crate) fn ready_len(&self, p: usize) -> usize {
        self.wakeup.ready[p].len()
    }
}

/// Thread-local allocation probe. The companion counting
/// `#[global_allocator]` is installed only in this crate's unit-test
/// binary (see `alloc_counter` below), where the zero-steady-state-alloc
/// assertion runs in debug mode; release builds carry no probe at all.
#[cfg(test)]
pub(crate) mod alloc_probe {
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// Record one heap allocation on this thread.
    pub(crate) fn bump() {
        ALLOCS.with(|c| c.set(c.get() + 1));
    }

    /// Allocations recorded on this thread so far.
    pub(crate) fn count() -> u64 {
        ALLOCS.with(Cell::get)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod alloc_counter {
    //! A counting allocator for the whole unit-test binary: delegates to
    //! the system allocator and bumps the thread-local probe on every
    //! allocation, so tests can assert a code region allocates nothing.
    use std::alloc::{GlobalAlloc, Layout, System};

    struct Counting;

    // SAFETY: pure delegation to `System`; the probe is a thread-local
    // `Cell<u64>` with no destructor, so no re-entrancy or TLS-teardown
    // hazards.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            super::alloc_probe::bump();
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            super::alloc_probe::bump();
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use redsoc_isa::prelude::*;

    use crate::config::{CoreConfig, SchedulerConfig};
    use crate::events::NullSink;
    use crate::pipeline::state::PipelineState;
    use crate::sched::build_scheduler;

    /// Two interleaved single-cycle ALU dependence chains — enough
    /// parallelism to keep the issue stage busy and (under redsoc) raise
    /// EGPW speculative requests.
    fn alu_chain_trace(n: u64) -> Vec<DynOp> {
        let mut ops = Vec::new();
        for i in 0..n {
            let reg = r((i % 2) as u8 + 1);
            let instr = Instr::Alu {
                op: if i % 2 == 0 { AluOp::Eor } else { AluOp::Add },
                dst: Some(reg),
                src1: Some(reg),
                op2: Operand2::Imm(0x5A),
                set_flags: false,
            };
            let mut d = DynOp::simple(i, (i % 64) as u32 * 4, instr);
            d.eff_bits = 8;
            ops.push(d);
        }
        ops.push(DynOp::simple(n, (n % 64) as u32 * 4, Instr::Halt));
        ops
    }

    /// Drive the staged loop by hand, asserting that once warmed up,
    /// `select_and_issue` performs zero heap allocations per cycle.
    fn assert_zero_steady_state_allocs(sched_cfg: SchedulerConfig) {
        let config = CoreConfig::big().with_sched(sched_cfg);
        let sched = build_scheduler(&config.sched);
        let mut state = PipelineState::new(config).expect("valid config");
        let trace = alu_chain_trace(40_000);
        let mut it = trace.into_iter();
        let mut sink = NullSink;
        // Warm past the full wheel circumference so every slot and scratch
        // buffer has reached its steady-state capacity.
        let warmup = 1200u64;
        let mut checked = 0u64;
        while !(state.fetch_stopped
            && state.fetchq.is_empty()
            && state.committed_total == state.dispatched_total)
        {
            state.commit(&*sched, &mut sink);
            let before = super::alloc_probe::count();
            state.select_and_issue(&*sched, &mut sink);
            let after = super::alloc_probe::count();
            if state.cycle > warmup {
                assert_eq!(
                    after - before,
                    0,
                    "select_and_issue allocated at cycle {}",
                    state.cycle
                );
                checked += 1;
            }
            state.dispatch(&*sched, &mut sink);
            state.fetch(&mut it, &mut sink);
            state.cycle += 1;
            assert!(state.cycle < 60_000, "trace did not drain");
        }
        assert!(checked > 1000, "too few steady-state cycles: {checked}");
    }

    #[test]
    fn steady_state_issue_loop_is_allocation_free_baseline() {
        assert_zero_steady_state_allocs(SchedulerConfig::baseline());
    }

    #[test]
    fn steady_state_issue_loop_is_allocation_free_redsoc() {
        assert_zero_steady_state_allocs(SchedulerConfig::redsoc());
    }

    #[test]
    fn ready_sets_empty_after_drain() {
        let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
        let sched = build_scheduler(&config.sched);
        let mut state = PipelineState::new(config).expect("valid config");
        let trace = alu_chain_trace(500);
        let mut it = trace.into_iter();
        let mut sink = NullSink;
        while !(state.fetch_stopped
            && state.fetchq.is_empty()
            && state.committed_total == state.dispatched_total)
        {
            state.commit(&*sched, &mut sink);
            state.select_and_issue(&*sched, &mut sink);
            state.dispatch(&*sched, &mut sink);
            state.fetch(&mut it, &mut sink);
            state.cycle += 1;
            assert!(state.cycle < 10_000, "trace did not drain");
        }
        for p in 0..4 {
            assert_eq!(state.ready_len(p), 0, "pool {p} ready set not drained");
        }
    }
}
