//! Execute-stage mechanism: operand dataflow (bypass networks, VMLA
//! late-forwarding, store-to-load forwarding) and completion timing of
//! multi-cycle, memory and control operations.
//!
//! Completion timing of *recyclable* (single-cycle-class) operations is
//! policy and is delegated to [`Scheduler::on_issue`]; whether an operand
//! crosses the transparent bypass is delegated to
//! [`Scheduler::transparent_pair`]. Everything else here is fixed
//! mechanism shared by every scheduler.

// Invariant `expect`s in this module are deliberate: each one guards a
// structural pipeline invariant that only a simulator bug can violate
// (never operator input), and a loud abort — isolated and quarantined
// per job by the bench supervisor — beats silently corrupting a
// result. The per-cycle hot path stays `Result`-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use redsoc_isa::instruction::Instr;
use redsoc_isa::opcode::{ExecClass, SimdOp};
use redsoc_isa::trace::DynOp;
use redsoc_mem::{MemReject, MemResponse};

use crate::sched::{ExecTiming, Scheduler};

use super::state::{Ifo, PipelineState};

/// How a load's value was (or was not) obtained by `multi_cycle_timing`:
/// not a memory access at all, forwarded from an older in-flight store,
/// or serviced by the memory model with the attached response.
pub(crate) enum LoadPath {
    /// Not a load (or a recyclable class that never reaches here).
    NotMem,
    /// Store-to-load forwarding from the LSQ; no cache access happened.
    Forwarded {
        /// Sequence number of the forwarding store.
        store_seq: u64,
    },
    /// Serviced by the memory model.
    Mem(MemResponse),
}

impl PipelineState {
    /// Whether `consumer` is a VMLA reading `tag`'s value through its
    /// accumulate operand (i.e. the producer wrote the VMLA's destination
    /// register). Only this operand is late-forwarded; the multiply
    /// operands feed the front of the multiply pipeline.
    pub(crate) fn is_acc_operand(producer: &Ifo, consumer: &Ifo) -> bool {
        let Instr::Simd {
            op: SimdOp::Vmla,
            dst,
            ..
        } = consumer.op.instr
        else {
            return false;
        };
        producer.dst_arch == Some(dst)
    }

    /// First cycle at which consumers of `tag` may be selected; `None` if
    /// the producer has not issued yet. Retired producers are ready.
    ///
    /// A VMLA's multiply operands need an extra `simd_mul - 1` cycles of
    /// lead so the pipelined multiply overlaps the accumulate chain (§V
    /// late-forwarding); its accumulate operand follows the normal
    /// single-cycle path.
    #[must_use]
    pub fn src_sel_ready(&self, tag: u64, consumer: &Ifo) -> Option<u64> {
        let Some(p) = self.ifo(tag) else {
            return Some(0);
        };
        if !p.issued {
            return None;
        }
        let is_vmla = matches!(
            consumer.op.instr,
            Instr::Simd {
                op: SimdOp::Vmla,
                ..
            }
        );
        if is_vmla && !Self::is_acc_operand(p, consumer) {
            return Some(p.sel_ready + u64::from(self.latencies.simd_mul - 1));
        }
        Some(p.sel_ready)
    }

    /// The tick at which `consumer` can use `tag`'s value: the raw
    /// Completion Instant when the scheduler's
    /// [`transparent_pair`](Scheduler::transparent_pair) policy allows the
    /// transparent bypass, or the next clock boundary.
    ///
    /// A VMLA consumer sees transparency only on its accumulate operand —
    /// multiply operands enter the (true-synchronous) multiply array.
    pub(crate) fn avail_for(&self, sched: &dyn Scheduler, tag: u64, consumer: &Ifo) -> (u64, bool) {
        let Some(p) = self.ifo(tag) else {
            return (0, false);
        };
        debug_assert!(p.issued, "avail_for called before producer issue");
        let is_vmla = matches!(
            consumer.op.instr,
            Instr::Simd {
                op: SimdOp::Vmla,
                ..
            }
        );
        if is_vmla && !Self::is_acc_operand(p, consumer) {
            return (self.quant.ceil_to_cycle(p.avail), false);
        }
        if sched.transparent_pair(p, consumer) {
            (p.avail, self.quant.ci_of(p.avail) != 0)
        } else {
            (self.quant.ceil_to_cycle(p.avail), false)
        }
    }

    /// Whether a waiting load is blocked by an older overlapping store that
    /// has not produced its data yet (perfect disambiguation: the trace
    /// gives exact addresses). Walks the in-window store index
    /// (`store_seqs`, program order) rather than the whole window.
    #[must_use]
    pub fn load_blocked(&self, load: &Ifo) -> bool {
        let Some(addr) = load.op.eff_addr else {
            return false;
        };
        let (a0, a1) = Self::byte_range(addr, &load.op.instr);
        self.store_seqs
            .iter()
            .take_while(|&&s| s < load.op.seq)
            .any(|&s| {
                self.ifo(s).is_some_and(|st| {
                    !st.issued
                        && st.op.eff_addr.is_some_and(|sa| {
                            let (s0, s1) = Self::byte_range(sa, &st.op.instr);
                            s0 < a1 && a0 < s1
                        })
                })
            })
    }

    pub(crate) fn byte_range(addr: u32, instr: &Instr) -> (u64, u64) {
        let w = match instr {
            Instr::Load { width, .. } | Instr::Store { width, .. } => width.bytes(),
            _ => 4,
        };
        (u64::from(addr), u64::from(addr) + u64::from(w))
    }

    /// The youngest older store overlapping this load, if any (for
    /// store-to-load forwarding). The store index is in program order, so
    /// the first overlap found scanning backwards is the youngest.
    pub(crate) fn forwarding_store(&self, load: &Ifo) -> Option<&Ifo> {
        let addr = load.op.eff_addr?;
        let (a0, a1) = Self::byte_range(addr, &load.op.instr);
        self.store_seqs
            .iter()
            .rev()
            .skip_while(|&&s| s >= load.op.seq)
            .find_map(|&s| {
                self.ifo(s).filter(|st| {
                    st.op.eff_addr.is_some_and(|sa| {
                        let (s0, s1) = Self::byte_range(sa, &st.op.instr);
                        s0 < a1 && a0 < s1
                    })
                })
            })
    }

    /// Completion/occupancy timing for non-recyclable classes: multi-cycle
    /// arithmetic, memory and control. Returns the timing plus the load's
    /// memory path. Loads request service from the memory port here; a
    /// structural rejection (MSHRs full under the contended model)
    /// surfaces as `Err` and the caller parks the entry until the retry
    /// horizon.
    pub(crate) fn multi_cycle_timing(
        &mut self,
        seq: u64,
        op: &DynOp,
        class: ExecClass,
        t: u64,
    ) -> Result<(ExecTiming, LoadPath), MemReject> {
        let q = self.quant;
        let boundary = |l: u64, occupancy: u32| ExecTiming {
            sel_ready: t + l,
            avail: q.cycle_start(t + 1 + l),
            done_cycle: t + 1 + l,
            occupancy,
            held_two: false,
        };
        Ok(match class {
            ExecClass::IntMul => (
                boundary(u64::from(self.latencies.int_mul), 1),
                LoadPath::NotMem,
            ),
            ExecClass::IntDiv => (
                boundary(u64::from(self.latencies.int_div), self.latencies.int_div),
                LoadPath::NotMem,
            ),
            ExecClass::Fp => {
                let instr_lat = match op.instr {
                    Instr::Fp {
                        op: redsoc_isa::opcode::FpOp::Fdiv,
                        ..
                    } => self.latencies.fp_div,
                    Instr::Fp {
                        op: redsoc_isa::opcode::FpOp::Fmul,
                        ..
                    } => self.latencies.fp_mul,
                    _ => self.latencies.fp_add,
                };
                (boundary(u64::from(instr_lat), 1), LoadPath::NotMem)
            }
            ExecClass::SimdMul => (
                boundary(u64::from(self.latencies.simd_mul), 1),
                LoadPath::NotMem,
            ),
            ExecClass::Load => {
                let fwd = {
                    let x = self.ifo(seq).expect("requesting entry exists");
                    self.forwarding_store(x).map(|s| (s.op.seq, s.done_cycle))
                };
                if let Some((store_seq, store_done)) = fwd {
                    // Store-to-load forwarding: 2-cycle effective latency
                    // once the store's data is in the LSQ.
                    let ready = store_done.max(t);
                    let l = (ready - t) + 2;
                    (boundary(l, 1), LoadPath::Forwarded { store_seq })
                } else {
                    let addr = u64::from(op.eff_addr.expect("loads carry addresses"));
                    let res = self.memory.request(seq, op.pc, addr, false, t)?;
                    let l = 1 + res.latency_cycles; // AGU + access
                    (boundary(l, 1), LoadPath::Mem(res))
                }
            }
            ExecClass::Store | ExecClass::Branch => (boundary(1, 1), LoadPath::NotMem),
            ExecClass::IntAlu | ExecClass::SimdAlu => {
                unreachable!("single-cycle ALU classes are always recyclable")
            }
        })
    }
}
