//! Integration-style unit tests for the staged pipeline: golden
//! behaviour, checkpoint/restore round-trips, store-to-load
//! forwarding, and the contended memory model (split out of `mod.rs`
//! to keep it within the module size budget).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use super::*;
use crate::config::SchedulerConfig;
use redsoc_isa::prelude::*;

fn logic_chain_trace(n: u64) -> Vec<DynOp> {
    let mut ops = Vec::new();
    for i in 0..n {
        let instr = Instr::Alu {
            op: AluOp::Eor,
            dst: Some(r(1)),
            src1: Some(r(1)),
            op2: Operand2::Imm(0x55),
            set_flags: false,
        };
        let mut d = DynOp::simple(i, (i % 64) as u32 * 4, instr);
        d.eff_bits = 8;
        ops.push(d);
    }
    ops.push(DynOp::simple(n, (n % 64) as u32 * 4, Instr::Halt));
    ops
}

/// Build a simulator with one in-flight op that can never issue: the
/// watchdog must fire instead of spinning forever. White-box — pokes
/// `PipelineState` internals, so it lives with the pipeline.
fn stuck_simulator() -> Simulator {
    let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
    let mut sim = Simulator::new(config).expect("valid config");
    let instr = Instr::Alu {
        op: AluOp::Add,
        dst: Some(r(0)),
        src1: Some(r(1)),
        op2: Operand2::Imm(1),
        set_flags: false,
    };
    sim.state
        .allocate(&*sim.sched, DynOp::simple(0, 0, instr), &mut NullSink);
    sim.state.ifos[0].earliest_req = u64::MAX; // never requests selection
    sim.state.fetch_stopped = true;
    sim
}

#[test]
fn watchdog_fires_on_stuck_pipeline_with_event_dump() {
    use crate::events::RingSink;
    let mut ring = RingSink::new(64);
    let err = stuck_simulator()
        .run_events(std::iter::empty(), &mut ring)
        .expect_err("stuck pipeline must deadlock, not hang");
    let SimError::Deadlock {
        cycle,
        committed,
        recent_events,
    } = err.clone()
    else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(cycle > 100_000, "watchdog threshold: fired at {cycle}");
    assert_eq!(committed, 0);
    // The ring collapses the 100k-cycle stall run, so the dispatch that
    // preceded it survives in the dump alongside the stall summary.
    assert!(
        recent_events.iter().any(|e| e.contains("StallCycle")),
        "diagnostic must show the stall run: {recent_events:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains("no commit progress"));
    assert!(msg.contains("pipeline events"));
}

#[test]
fn watchdog_without_events_reports_empty_dump() {
    let err = stuck_simulator()
        .run(std::iter::empty())
        .expect_err("stuck pipeline must deadlock");
    let SimError::Deadlock { recent_events, .. } = &err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(recent_events.is_empty(), "NullSink retains nothing");
    assert!(err.to_string().contains("events were disabled"));
}

#[test]
fn cycle_budget_cancels_a_long_run() {
    let trace = logic_chain_trace(50_000);
    let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
    let err = Simulator::new(config)
        .expect("valid config")
        .with_cancel(CancelToken::with_budget(512))
        .run(trace.into_iter())
        .expect_err("budget must cancel the run");
    match err {
        SimError::Cancelled {
            cycle, committed, ..
        } => {
            // Polled every 1024 cycles, so detection lands on the next
            // multiple of 1024 at or after the budget.
            assert!((512..=2048).contains(&cycle), "cancelled at {cycle}");
            assert!(committed < 50_000);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn external_cancel_flag_stops_the_run_immediately() {
    let trace = logic_chain_trace(5_000);
    let token = CancelToken::new();
    token.cancel();
    let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
    let err = Simulator::new(config)
        .expect("valid config")
        .with_cancel(token)
        .run(trace.into_iter())
        .expect_err("pre-cancelled token must stop the run");
    assert!(matches!(err, SimError::Cancelled { cycle: 0, .. }));
}

#[test]
fn unattached_token_runs_to_completion() {
    let trace = logic_chain_trace(2_000);
    let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
    let rep = Simulator::new(config)
        .expect("valid config")
        .with_cancel(CancelToken::new())
        .run(trace.into_iter())
        .expect("no budget, no cancel: must complete");
    assert_eq!(rep.committed, 2_001);
}

#[test]
fn checkpointed_run_matches_plain_run_and_restores_identically() {
    let trace = logic_chain_trace(20_000);
    let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());

    let full = Simulator::new(config.clone())
        .expect("valid config")
        .run(trace.iter().copied())
        .expect("plain run");

    let mut snaps: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut save = |cycle: u64, blob: Vec<u8>| snaps.push((cycle, blob));
    let checkpointed = Simulator::new(config.clone())
        .expect("valid config")
        .run_events_checkpointed(
            trace.iter().copied(),
            &mut NullSink,
            CheckpointPlan::new(1024, &mut save),
        )
        .expect("checkpointed run");
    assert_eq!(full, checkpointed, "checkpointing must not perturb the run");
    assert!(snaps.len() >= 2, "expected several checkpoints");

    // Restore from a mid-run checkpoint and run the tail: the final
    // report must be identical to the uninterrupted run's.
    let (cycle, blob) = snaps[snaps.len() / 2].clone();
    let (sim, cursor) = Simulator::restore(config.clone(), &blob, &trace).expect("restore");
    assert_eq!(sim.state.cycle, cycle);
    let resumed = sim
        .run(
            trace[usize::try_from(cursor).expect("cursor fits")..]
                .iter()
                .copied(),
        )
        .expect("resumed run");
    assert_eq!(full, resumed, "restored run diverged");

    // A restored run checkpointing at the same absolute interval must
    // reproduce the later checkpoints byte-for-byte.
    let (first_cycle, first_blob) = snaps[0].clone();
    let (sim, cursor) = Simulator::restore(config, &first_blob, &trace).expect("restore first");
    let mut resnap: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut save2 = |cycle: u64, blob: Vec<u8>| resnap.push((cycle, blob));
    sim.run_events_checkpointed(
        trace[usize::try_from(cursor).expect("cursor fits")..]
            .iter()
            .copied(),
        &mut NullSink,
        CheckpointPlan::new(1024, &mut save2),
    )
    .expect("resumed checkpointed run");
    let tail: Vec<(u64, Vec<u8>)> = snaps
        .iter()
        .filter(|(c, _)| *c > first_cycle)
        .cloned()
        .collect();
    assert_eq!(tail, resnap, "resumed checkpoints must be byte-identical");
}

fn load_op(seq: u64, pc: u32, addr: u32) -> DynOp {
    let mut d = DynOp::simple(
        seq,
        pc,
        Instr::Load {
            dst: ArchReg::int(2),
            base: ArchReg::int(1),
            offset: 0,
            width: redsoc_isa::opcode::MemWidth::B4,
        },
    );
    d.eff_addr = Some(addr);
    d
}

fn store_op(seq: u64, pc: u32, addr: u32) -> DynOp {
    let mut d = DynOp::simple(
        seq,
        pc,
        Instr::Store {
            src: ArchReg::int(3),
            base: ArchReg::int(1),
            offset: 0,
            width: redsoc_isa::opcode::MemWidth::B4,
        },
    );
    d.eff_addr = Some(addr);
    d
}

#[test]
fn store_to_load_forwarding_emits_event_and_stat() {
    use crate::events::VecSink;
    let trace = vec![
        store_op(0, 0, 0x100),
        load_op(1, 4, 0x100),
        DynOp::simple(2, 8, Instr::Halt),
    ];
    let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
    let mut sink = VecSink::new();
    let rep = Simulator::new(config)
        .expect("valid config")
        .run_events(trace.into_iter(), &mut sink)
        .expect("run");
    assert_eq!(rep.stl_forwards, 1, "the load must forward from the store");
    assert!(
        sink.events.iter().any(|(_, e)| matches!(
            e,
            PipeEvent::StoreForward {
                seq: 1,
                store_seq: 0
            }
        )),
        "StoreForward must name load #1 and store #0: {:?}",
        sink.events
    );
    // The forwarded load never reached the cache hierarchy: the only
    // access is the store's own, at retirement.
    let m = &rep.memory;
    assert_eq!(
        m.l1_hits + m.l2_hits + m.mem_accesses,
        1,
        "only the store may touch the hierarchy"
    );
}

#[test]
fn partially_overlapping_unissued_store_blocks_but_still_forwards_when_issued() {
    // White-box: allocate a store and a load whose byte ranges overlap
    // only partially ([0x100,0x104) vs [0x102,0x106)).
    let config = CoreConfig::big().with_sched(SchedulerConfig::baseline());
    let mut sim = Simulator::new(config).expect("valid config");
    sim.state
        .allocate(&*sim.sched, store_op(0, 0, 0x100), &mut NullSink);
    sim.state
        .allocate(&*sim.sched, load_op(1, 4, 0x102), &mut NullSink);
    sim.state
        .allocate(&*sim.sched, load_op(2, 8, 0x104), &mut NullSink);

    // While the store is unissued its data is unavailable: the
    // overlapping load is blocked, the adjacent (non-overlapping)
    // load is not.
    assert!(!sim.state.ifos[0].issued);
    assert!(
        sim.state.load_blocked(&sim.state.ifos[1]),
        "partial overlap with an unissued store must block the load"
    );
    assert!(
        !sim.state.load_blocked(&sim.state.ifos[2]),
        "byte ranges [0x100,0x104) and [0x104,0x108) do not overlap"
    );

    // Once the store has issued, the same overlap forwards instead.
    sim.state.ifos[0].issued = true;
    assert!(!sim.state.load_blocked(&sim.state.ifos[1]));
    assert_eq!(
        sim.state
            .forwarding_store(&sim.state.ifos[1])
            .map(|s| s.op.seq),
        Some(0),
        "partial overlap forwards from the youngest older store"
    );
    assert!(
        sim.state.forwarding_store(&sim.state.ifos[2]).is_none(),
        "non-overlapping load must go to memory"
    );
}

/// A strided miss stream against a deliberately tiny contended
/// hierarchy: every classic-model snapshot guarantee must carry over,
/// including restoring mid-flight with non-empty MSHRs.
#[test]
fn contended_model_checkpoints_restore_identically_with_inflight_misses() {
    use redsoc_mem::{ContendedConfig, MemModelConfig};
    // Bursts of a pointer-chase pair plus independent fillers, all
    // missing (64-byte stride over 1 MiB). The chased load becomes
    // ready only after its producer load completes — by which time
    // the out-of-order fillers (including the next burst's) have
    // filled the tiny MSHR file — so it is rejected *while at the
    // ROB head*, exercising the Mshr stall bucket, not just the
    // reject counter.
    let mut trace: Vec<DynOp> = Vec::new();
    let addr = |i: u64| u32::try_from((i * 64) % (1 << 20)).expect("fits");
    let mut seq = 0u64;
    for burst in 0..800u64 {
        let producer = {
            let mut d = load_op(seq, (seq % 64) as u32 * 4, addr(burst * 6));
            d.instr = Instr::Load {
                dst: ArchReg::int(2),
                base: ArchReg::int(1),
                offset: 0,
                width: redsoc_isa::opcode::MemWidth::B4,
            };
            d
        };
        trace.push(producer);
        seq += 1;
        let chased = {
            let mut d = load_op(seq, (seq % 64) as u32 * 4, addr(burst * 6 + 1));
            d.instr = Instr::Load {
                dst: ArchReg::int(5),
                base: ArchReg::int(2), // depends on the producer's result
                offset: 0,
                width: redsoc_isa::opcode::MemWidth::B4,
            };
            d
        };
        trace.push(chased);
        seq += 1;
        for k in 2..6u64 {
            trace.push(load_op(seq, (seq % 64) as u32 * 4, addr(burst * 6 + k)));
            seq += 1;
        }
    }
    trace.push(DynOp::simple(seq, 0, Instr::Halt));

    let config = CoreConfig::big()
        .with_sched(SchedulerConfig::redsoc())
        .with_mem_model(MemModelConfig::Contended(ContendedConfig {
            mshrs: 2,
            l1_ports: 1,
            l2_ports: 1,
            dram_interval: 16,
        }));

    let full = Simulator::new(config.clone())
        .expect("valid config")
        .run(trace.iter().copied())
        .expect("plain run");
    assert_eq!(
        full.stalls.total(),
        full.cycles,
        "stall partition must hold under the contended model"
    );
    assert!(
        full.mem_contention.mshr_rejects > 0,
        "the tiny MSHR file must actually reject: {:?}",
        full.mem_contention
    );
    assert!(
        full.stalls.count(StallCause::Mshr) > 0,
        "rejected head loads must be attributed to the Mshr bucket"
    );

    let mut snaps: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut save = |cycle: u64, blob: Vec<u8>| snaps.push((cycle, blob));
    let checkpointed = Simulator::new(config.clone())
        .expect("valid config")
        .run_events_checkpointed(
            trace.iter().copied(),
            &mut NullSink,
            CheckpointPlan::new(512, &mut save),
        )
        .expect("checkpointed run");
    assert_eq!(full, checkpointed, "checkpointing must not perturb the run");

    // Find a checkpoint taken while misses were outstanding — the
    // MSHR file round-trips through the snapshot, so the restored
    // model must report the same in-flight count and the resumed run
    // must finish identically.
    let mut restored_with_inflight = 0;
    for (cycle, blob) in &snaps {
        let (sim, cursor) = Simulator::restore(config.clone(), blob, &trace).expect("restore");
        assert_eq!(sim.state.cycle, *cycle);
        if sim.state.memory.inflight(*cycle) == 0 {
            continue;
        }
        restored_with_inflight += 1;
        let resumed = sim
            .run(
                trace[usize::try_from(cursor).expect("cursor fits")..]
                    .iter()
                    .copied(),
            )
            .expect("resumed run");
        assert_eq!(full, resumed, "mid-flight restore diverged at {cycle}");
        if restored_with_inflight >= 3 {
            break;
        }
    }
    assert!(
        restored_with_inflight > 0,
        "no checkpoint caught the MSHRs non-empty — the property was never exercised"
    );
}

#[test]
fn restore_rejects_mismatched_config_and_corruption() {
    let trace = logic_chain_trace(4_000);
    let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
    let sim = Simulator::new(config.clone()).expect("valid config");
    let blob = sim.snapshot();

    // Different scheduler mode → different config digest.
    let other = CoreConfig::big().with_sched(SchedulerConfig::baseline());
    assert_eq!(
        Simulator::restore(other, &blob, &trace).err(),
        Some(snapshot::SnapshotError::ConfigMismatch)
    );

    // A flipped byte fails the integrity digest.
    let mut torn = blob.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x10;
    assert_eq!(
        Simulator::restore(config.clone(), &torn, &trace).err(),
        Some(snapshot::SnapshotError::DigestMismatch)
    );

    // A truncated blob never parses.
    assert!(Simulator::restore(config.clone(), &blob[..blob.len() / 2], &trace).is_err());

    // Not a snapshot at all.
    assert_eq!(
        Simulator::restore(config, b"definitely not a snapshot", &trace).err(),
        Some(snapshot::SnapshotError::BadMagic)
    );
}

#[test]
fn restore_rejects_a_foreign_trace() {
    let trace = logic_chain_trace(6_000);
    let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
    let mut snaps: Vec<Vec<u8>> = Vec::new();
    let mut save = |_cycle: u64, blob: Vec<u8>| snaps.push(blob);
    Simulator::new(config.clone())
        .expect("valid config")
        .run_events_checkpointed(
            trace.iter().copied(),
            &mut NullSink,
            CheckpointPlan::new(1024, &mut save),
        )
        .expect("checkpointed run");
    let blob = snaps.first().expect("at least one checkpoint");
    // A shorter trace cannot rehydrate the in-flight window.
    let short = logic_chain_trace(10);
    assert!(matches!(
        Simulator::restore(config, blob, &short).err(),
        Some(snapshot::SnapshotError::TraceMismatch { .. })
    ));
}

#[test]
fn configured_deadlock_threshold_is_validated_at_construction() {
    let mut config = CoreConfig::big();
    config.deadlock_cycles = 0;
    assert!(matches!(
        Simulator::new(config),
        Err(SimError::BadConfig(_))
    ));
}
