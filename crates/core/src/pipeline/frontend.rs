//! Front-end stages: fetch (with gshare branch prediction and redirect
//! handling) and dispatch (rename through the RAT, ROB/RSE/LSQ
//! allocation, slack-LUT classification, last-arrival prediction).
//!
//! The only scheduling policy consulted here is
//! [`Scheduler::uses_tag_prediction`]: whether rename collapses a
//! two-unresolved-source entry onto a predicted-last tag (the operational
//! RSE design, §IV-C) or stores all tags for conventional wakeup.

// Invariant `expect`s in this module are deliberate: each one guards a
// structural pipeline invariant that only a simulator bug can violate
// (never operator input), and a loud abort — isolated and quarantined
// per job by the bench supervisor — beats silently corrupting a
// result. The per-cycle hot path stays `Result`-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use redsoc_isa::instruction::Instr;
use redsoc_isa::opcode::{Cond, ExecClass, SimdOp};
use redsoc_isa::reg::ArchReg;
use redsoc_isa::trace::DynOp;
use redsoc_timing::slack::{SlackBucket, WidthClass};

use crate::events::{EventSink, PipeEvent};
use crate::fu::PoolKind;
use crate::sched::Scheduler;
use crate::stats::StallCause;
use crate::tag_pred::LastArrival;

use super::state::{Fetched, Ifo, PipelineState};

impl PipelineState {
    pub(crate) fn fetch<S: EventSink>(
        &mut self,
        trace: &mut impl Iterator<Item = DynOp>,
        sink: &mut S,
    ) {
        // Resolve a pending branch redirect once the branch executes.
        if let Some(seq) = self.pending_redirect {
            let done = self.ifo(seq).filter(|i| i.issued).map(|i| i.done_cycle);
            match done {
                Some(d) if self.cycle >= d => {
                    self.pending_redirect = None;
                    self.fetch_blocked_until = d + u64::from(self.config.mispredict_penalty);
                    if S::ENABLED {
                        sink.record(
                            self.cycle,
                            &PipeEvent::FetchRedirect {
                                seq,
                                resume_cycle: self.fetch_blocked_until,
                            },
                        );
                    }
                }
                _ => return,
            }
        }
        if self.cycle < self.fetch_blocked_until || self.fetch_stopped {
            return;
        }
        let cap = (self.config.frontend_width * 4) as usize;
        let ready = self.cycle + u64::from(self.config.frontend_depth);
        for _ in 0..self.config.frontend_width {
            if self.fetchq.len() >= cap {
                break;
            }
            let Some(op) = trace.next() else {
                self.fetch_stopped = true;
                break;
            };
            let is_halt = matches!(op.instr, Instr::Halt);
            let mispredicted = match op.instr {
                Instr::Branch { cond, .. } if cond.reads_flags() => {
                    !self.gshare.predict_and_train(op.pc, op.taken)
                }
                Instr::Branch { cond: Cond::Al, .. } => false,
                _ => false,
            };
            self.fetchq.push_back(Fetched {
                op,
                ready_cycle: ready,
            });
            if S::ENABLED {
                sink.record(
                    self.cycle,
                    &PipeEvent::Fetch {
                        seq: op.seq,
                        pc: op.pc,
                    },
                );
            }
            if is_halt {
                self.fetch_stopped = true;
                break;
            }
            if mispredicted {
                self.pending_redirect = Some(op.seq);
                break;
            }
        }
    }

    pub(crate) fn rob_free(&self) -> bool {
        (self.dispatched_total - self.committed_total) < u64::from(self.config.rob_entries)
    }

    /// Dispatch up to one front-end width of fetched ops. Returns the
    /// back-pressure reason that stopped dispatch while an op was ready,
    /// if any (the structural-hazard input to stall attribution).
    pub(crate) fn dispatch<S: EventSink>(
        &mut self,
        sched: &dyn Scheduler,
        sink: &mut S,
    ) -> Option<StallCause> {
        let mut block = None;
        for _ in 0..self.config.frontend_width {
            let Some(head) = self.fetchq.front() else {
                break;
            };
            if head.ready_cycle > self.cycle {
                break;
            }
            let op = head.op;
            let is_mem = op.instr.is_mem();
            if !self.rob_free() {
                block = Some(StallCause::RobFull);
                break;
            }
            if self.rse_used >= self.config.rse_entries {
                block = Some(StallCause::RsFull);
                break;
            }
            if is_mem && self.lsq_used >= self.config.lsq_entries {
                block = Some(StallCause::LsqFull);
                break;
            }
            self.fetchq.pop_front();
            self.allocate(sched, op, sink);
        }
        block
    }

    pub(crate) fn allocate<S: EventSink>(
        &mut self,
        sched: &dyn Scheduler,
        op: DynOp,
        sink: &mut S,
    ) {
        let seq = self.next_seq;
        debug_assert_eq!(seq, op.seq, "trace must be consumed in order");
        let class = op.instr.exec_class();
        let mut recyclable = class.is_recyclable();
        let pool = PoolKind::for_class(class);

        // VMLA late-forwarding (§V): Cortex-A57-style multiply-accumulate
        // forwards the accumulate operand into the final adder stage, so a
        // chain of VMLAs executes as sequential single-cycle accumulates —
        // and under ReDSOC the accumulate adder's slack (narrow lanes!) is
        // recyclable like any other single-cycle SIMD op. The pipelined
        // multiply overlaps older chain links; its operands therefore need
        // an extra lead time, enforced in `src_sel_ready`.
        let mut vmla_acc_ext: Option<u64> = None;
        if let Instr::Simd {
            op: SimdOp::Vmla,
            ty,
            ..
        } = op.instr
        {
            recyclable = true;
            vmla_acc_ext = Some(
                self.quant
                    .ps_to_ticks_ceil(redsoc_timing::optime::simd_accumulate_ps(ty)),
            );
        }

        // Resolve sources through the RAT (deduplicated, program order).
        let mut srcs: Vec<u64> = Vec::with_capacity(4);
        let mut src_positions: Vec<usize> = Vec::new();
        for (pos, reg) in op.instr.srcs().iter().enumerate() {
            if let Some(tag) = self.rat[reg.index()] {
                if !srcs.contains(&tag) {
                    srcs.push(tag);
                    src_positions.push(pos);
                }
            }
        }

        // Width prediction (scalar single-cycle ALU ops, §II-B).
        let pred_width = if class == ExecClass::IntAlu {
            self.width_pred.predict(op.pc)
        } else {
            WidthClass::W32
        };

        // Slack-LUT compute time for recyclable ops.
        let ext_ticks = if let Some(acc) = vmla_acc_ext {
            acc
        } else if recyclable {
            let bucket =
                SlackBucket::classify(&op.instr, pred_width).expect("recyclable ops classify");
            self.quant.ps_to_ticks_ceil(self.lut.compute_ps(bucket))
        } else {
            0
        };

        // Operational-design last-arrival prediction (§IV-C): among sources
        // whose producers are still waiting to issue.
        let unissued: Vec<(usize, u64)> = srcs
            .iter()
            .enumerate()
            .filter(|(_, &t)| self.ifo(t).is_some_and(|p| !p.issued))
            .map(|(i, &t)| (i, t))
            .collect();
        let use_prediction = sched.uses_tag_prediction(recyclable);
        let (pred_last, pred_pos) = match unissued.as_slice() {
            [] => {
                // Everything issued: the operand with the latest broadcast
                // is trivially "last"; no prediction consumed.
                let last = srcs
                    .iter()
                    .copied()
                    .max_by_key(|&t| self.ifo(t).map_or(0, |p| p.sel_ready));
                (last, None)
            }
            [(_, t)] => (Some(*t), None),
            [(i0, t0), (i1, t1)] if use_prediction => {
                match self.tag_pred.predict(op.pc) {
                    Some(p) => {
                        let chosen = match p {
                            LastArrival::Src0 => *t0,
                            LastArrival::Src1 => *t1,
                        };
                        (Some(chosen), Some((Some(p), *i0, *i1)))
                    }
                    None => {
                        // Unconfident entry: conventional two-tag wakeup
                        // (no penalty risk); keep training at issue.
                        ((*t0).max(*t1).into(), Some((None, *i0, *i1)))
                    }
                }
            }
            rest => {
                // 3+ unresolved producers: take the youngest (heuristically
                // last to arrive); no predictor involvement.
                (rest.iter().map(|(_, t)| *t).max(), None)
            }
        };

        // Grandparent tag: the predicted-last parent's own predicted-last
        // parent, passed through rename exactly as in the paper.
        let gp_tag = pred_last
            .and_then(|t| self.ifo(t))
            .and_then(|p| p.pred_last);

        let ifo = Ifo {
            op,
            class,
            recyclable,
            pool,
            srcs,
            pred_last,
            gp_tag,
            pred_pos,
            ext_ticks,
            pred_width,
            dst_arch: op.instr.dst(),
            earliest_req: self.cycle + 1,
            fallback: matches!(pred_pos, Some((None, _, _))),
            issued: false,
            issue_cycle: 0,
            sel_ready: 0,
            avail: 0,
            done_cycle: 0,
            transparent: false,
            held_two: false,
            chain_len: 1,
            chain_extended: false,
            committed: false,
            l1_miss: false,
            mem_rejected: false,
            waiters: Vec::new(),
            in_ready: false,
        };

        // RAT update: destination register and flags.
        if let Some(d) = op.instr.dst() {
            self.rat[d.index()] = Some(seq);
        }
        if op.instr.writes_flags() {
            self.rat[ArchReg::flags().index()] = Some(seq);
        }

        self.ifos.push_back(ifo);
        self.next_seq += 1;
        self.dispatched_total += 1;
        self.rse_used += 1;
        if op.instr.is_mem() {
            self.lsq_used += 1;
        }
        if matches!(op.instr, Instr::Store { .. }) {
            self.store_seqs.push_back(seq);
        }
        // Event-driven wakeup: arm the earliest-request alarm and
        // subscribe to still-unissued producers (srcs and grandparent).
        self.wakeup_on_dispatch(seq);
        if S::ENABLED {
            sink.record(
                self.cycle,
                &PipeEvent::Dispatch {
                    seq,
                    pc: op.pc,
                    pool,
                },
            );
        }
    }
}
