//! Shared pipeline state: the structures every stage borrows.
//!
//! [`PipelineState`] owns the in-flight instruction window, the rename
//! table, the fetch queue, the functional-unit pools, the predictors and
//! the memory hierarchy. The stage implementations
//! ([`frontend`](crate::pipeline::frontend), [`issue`](crate::pipeline::issue),
//! [`exec`](crate::pipeline::exec), [`commit`](crate::pipeline::commit))
//! are `impl PipelineState` blocks in their own files, so each stage
//! borrows exactly this one struct and the borrow checker arbitrates.

use std::collections::VecDeque;

use redsoc_isa::opcode::ExecClass;
use redsoc_isa::reg::{ArchReg, NUM_ARCH_REGS};
use redsoc_isa::trace::DynOp;
use redsoc_mem::{build_memory_model, MemoryModel};
use redsoc_timing::optime::MultiCycleLatencies;
use redsoc_timing::pvt::PvtModel;
use redsoc_timing::slack::{SlackLut, WidthClass};
use redsoc_timing::width_predictor::WidthPredictor;
use redsoc_timing::Quant;

use crate::branch::Gshare;
use crate::config::CoreConfig;
use crate::fu::{FuPool, PoolKind};
use crate::stats::SimReport;
use crate::tag_pred::{LastArrival, TagPredictor};

use super::wakeup::WakeupState;
use super::SimError;

/// Dynamic instruction state while in flight — one reservation-station /
/// reorder-buffer entry. [`Scheduler`](crate::sched::Scheduler) hooks
/// receive these entries to make wakeup/select/bypass decisions.
#[derive(Debug, Clone)]
pub struct Ifo {
    /// The traced dynamic operation.
    pub op: DynOp,
    /// Execution class resolved at decode.
    pub class: ExecClass,
    /// Whether this is a single-cycle op whose data slack is recyclable.
    pub recyclable: bool,
    /// Functional-unit pool this op issues to.
    pub pool: PoolKind,
    /// Producer tags of all register sources (deduplicated).
    pub srcs: Vec<u64>,
    /// Predicted-last-arriving source tag (operational RSE design).
    pub pred_last: Option<u64>,
    /// Predicted grandparent tag (the parent's own predicted-last parent).
    pub gp_tag: Option<u64>,
    /// When two source operands were unresolved at rename: the predicted
    /// position (`None` while the predictor is unconfident and conventional
    /// wakeup is used) plus the positions of the two candidate tags within
    /// `srcs`.
    pub pred_pos: Option<(Option<LastArrival>, usize, usize)>,
    /// Quantised compute time from the slack LUT (recyclable ops only).
    pub ext_ticks: u64,
    /// Predicted width at decode (scalar ALU ops).
    pub pred_width: WidthClass,
    /// Destination architectural register (for accumulate-chain detection).
    pub dst_arch: Option<ArchReg>,
    /// Earliest cycle this entry may request selection.
    pub earliest_req: u64,
    /// After a tag mispredict, fall back to all-operands wakeup.
    pub fallback: bool,
    /// Whether the op has issued.
    pub issued: bool,
    /// Cycle the op was selected for issue.
    pub issue_cycle: u64,
    /// First cycle consumers may be selected.
    pub sel_ready: u64,
    /// Estimated completion tick (the CI-bus value). Boundary for
    /// non-recyclable results.
    pub avail: u64,
    /// Cycle at which the ROB may retire this op.
    pub done_cycle: u64,
    /// Whether evaluation began mid-cycle (recycled slack).
    pub transparent: bool,
    /// Whether the evaluation crossed a clock boundary and held its FU for
    /// two cycles (IT3) — the `SlackHold` stall attribution.
    pub held_two: bool,
    /// Length of the transparent chain ending at this op (Fig. 11).
    pub chain_len: u32,
    /// Whether a younger op extended this op's transparent chain.
    pub chain_extended: bool,
    /// Whether the op has retired.
    pub committed: bool,
    /// Whether the op missed in the L1 (loads/stores).
    pub l1_miss: bool,
    /// Whether the memory model structurally rejected this load's last
    /// issue attempt (MSHRs full) — the `StallCause::Mshr` attribution
    /// flag, cleared when the op finally issues.
    pub mem_rejected: bool,
    /// Event-driven wakeup: sequence tags of dispatched consumers waiting
    /// on this entry's issue broadcast (drained exactly once at issue; see
    /// [`crate::pipeline::wakeup`]).
    pub(crate) waiters: Vec<u64>,
    /// Whether this entry currently sits in its pool's ready set (the
    /// membership mirror preventing double insertion).
    pub(crate) in_ready: bool,
}

/// A fetched op waiting to dispatch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fetched {
    pub(crate) op: DynOp,
    pub(crate) ready_cycle: u64,
}

/// The shared micro-architectural state all pipeline stages operate on.
///
/// Stage mechanism lives in `impl PipelineState` blocks under
/// [`crate::pipeline`]; scheduling policy is delegated to a
/// [`Scheduler`](crate::sched::Scheduler). External scheduler
/// implementations observe the state through the documented accessors
/// ([`PipelineState::cycle`], [`PipelineState::quant`],
/// [`PipelineState::ifo`], [`PipelineState::src_sel_ready`], …).
#[derive(Debug)]
pub struct PipelineState {
    pub(crate) config: CoreConfig,
    pub(crate) quant: Quant,
    /// The design-time slack LUT (worst-case PVT corner).
    pub(crate) base_lut: SlackLut,
    /// The active LUT — equal to `base_lut`, or recalibrated against the
    /// measured PVT guard band each epoch (§V).
    pub(crate) lut: SlackLut,
    pub(crate) pvt: PvtModel,
    pub(crate) latencies: MultiCycleLatencies,

    // Pipeline state.
    pub(crate) cycle: u64,
    pub(crate) ifos: VecDeque<Ifo>,
    pub(crate) base_seq: u64,
    pub(crate) next_seq: u64,
    pub(crate) committed_total: u64,
    pub(crate) dispatched_total: u64,
    pub(crate) rse_used: u32,
    pub(crate) lsq_used: u32,
    pub(crate) rat: [Option<u64>; NUM_ARCH_REGS],
    /// In-window store seqs in program order — the index behind
    /// [`PipelineState::load_blocked`] / `forwarding_store`, so memory
    /// disambiguation walks only the stores, not the whole window.
    pub(crate) store_seqs: VecDeque<u64>,
    pub(crate) fetchq: VecDeque<Fetched>,
    pub(crate) fetch_stopped: bool,
    pub(crate) pending_redirect: Option<u64>,
    pub(crate) fetch_blocked_until: u64,

    // Functional-unit pools.
    pub(crate) alu: FuPool,
    pub(crate) simd: FuPool,
    pub(crate) fp: FuPool,
    pub(crate) mem_ports: FuPool,

    // Predictors & memory.
    pub(crate) width_pred: WidthPredictor,
    pub(crate) tag_pred: TagPredictor,
    pub(crate) gshare: Gshare,
    /// The memory port: loads request service at issue, stores at
    /// retirement. Built from [`CoreConfig::mem_model`].
    pub(crate) memory: Box<dyn MemoryModel>,

    // Event-driven wakeup bookkeeping + persistent issue-stage scratch.
    pub(crate) wakeup: WakeupState,
    /// Drive issue with the legacy O(window) scan (differential testing).
    #[cfg(feature = "scan-wakeup")]
    pub(crate) scan_wakeup: bool,

    // Statistics.
    pub(crate) report: SimReport,
}

impl PipelineState {
    /// Build the initial state for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the configuration is invalid.
    pub(crate) fn new(config: CoreConfig) -> Result<Self, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let quant = config.sched.quant();
        let memory = build_memory_model(
            config.mem_model,
            config.l1,
            config.l2,
            config.mem_latencies,
            config.prefetch,
        );
        let pvt = if config.sched.pvt_guard_band {
            PvtModel::nominal()
        } else {
            PvtModel::worst_case()
        };
        Ok(PipelineState {
            quant,
            base_lut: SlackLut::new(),
            lut: SlackLut::new(),
            pvt,
            latencies: MultiCycleLatencies::default(),
            cycle: 0,
            ifos: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            committed_total: 0,
            dispatched_total: 0,
            rse_used: 0,
            lsq_used: 0,
            rat: [None; NUM_ARCH_REGS],
            store_seqs: VecDeque::new(),
            fetchq: VecDeque::new(),
            fetch_stopped: false,
            pending_redirect: None,
            fetch_blocked_until: 0,
            alu: FuPool::new(config.alu_units),
            simd: FuPool::new(config.simd_units),
            fp: FuPool::new(config.fp_units),
            mem_ports: FuPool::new(config.mem_ports),
            width_pred: WidthPredictor::new(config.sched.width_predictor_entries, 3),
            tag_pred: TagPredictor::new(config.sched.tag_predictor_entries),
            gshare: Gshare::default_config(),
            memory,
            wakeup: WakeupState::new(),
            #[cfg(feature = "scan-wakeup")]
            scan_wakeup: false,
            report: SimReport::default(),
            config,
        })
    }

    /// The current simulated cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The CI quantiser (ticks-per-cycle arithmetic).
    #[must_use]
    pub fn quant(&self) -> Quant {
        self.quant
    }

    /// The core configuration this pipeline was built from.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Look up the in-flight entry for `tag`; `None` once it has retired
    /// out of the window (architecturally ready).
    #[must_use]
    pub fn ifo(&self, tag: u64) -> Option<&Ifo> {
        if tag < self.base_seq {
            None // retired long ago: architecturally ready
        } else {
            self.ifos.get((tag - self.base_seq) as usize)
        }
    }

    pub(crate) fn ifo_mut(&mut self, tag: u64) -> Option<&mut Ifo> {
        if tag < self.base_seq {
            None
        } else {
            self.ifos.get_mut((tag - self.base_seq) as usize)
        }
    }

    pub(crate) fn pool_mut(&mut self, kind: PoolKind) -> &mut FuPool {
        match kind {
            PoolKind::Alu => &mut self.alu,
            PoolKind::Simd => &mut self.simd,
            PoolKind::Fp => &mut self.fp,
            PoolKind::Mem => &mut self.mem_ports,
        }
    }

    pub(crate) fn pool(&self, kind: PoolKind) -> &FuPool {
        match kind {
            PoolKind::Alu => &self.alu,
            PoolKind::Simd => &self.simd,
            PoolKind::Fp => &self.fp,
            PoolKind::Mem => &self.mem_ports,
        }
    }
}
