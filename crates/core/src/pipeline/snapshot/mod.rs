//! Deterministic snapshot/restore of the full in-flight pipeline.
//!
//! A snapshot captures *everything* the simulation loop reads in later
//! cycles: the in-flight window (IFO entries, RAT, store-sequence index,
//! fetch queue), the functional-unit pools, the event-driven wakeup
//! structures (per-pool ready sets, timer wheel, far-future overflow,
//! broadcast subscriptions), all predictor tables (width, tag, branch),
//! the memory model's own opaque blob (`MemoryModel::snapshot` — cache
//! tag arrays, prefetcher, and for the contended hierarchy the live
//! MSHR file, port schedules and DRAM queue), the PVT/LUT
//! recalibration epoch state, and the accumulated statistics. Scheduler
//! *policy* state rides along through
//! [`Scheduler::snapshot`](crate::sched::Scheduler::snapshot) /
//! [`Scheduler::restore`](crate::sched::Scheduler::restore) — the
//! contract is that anything a scheduler mutates after construction must
//! round-trip, and an empty blob is correct for stateless policies (all
//! four in-tree schedulers).
//!
//! What is deliberately *not* serialized, because it is reconstructible:
//!
//! - the trace itself — in-flight ops are rehydrated by sequence number
//!   from the caller-supplied trace slice, verified via
//!   [`SnapshotError::TraceMismatch`];
//! - configuration-derived constants (`quant`, `base_lut`,
//!   multi-cycle latencies) — rebuilt by `PipelineState::new`;
//! - per-cycle scratch buffers (select requests, grant lists) that are
//!   empty at every cycle boundary, the only capture point.
//!
//! # Wire format
//!
//! `"RSNP"` magic, a format version, a config digest (FNV-1a over the
//! `Debug` rendering of the [`CoreConfig`]
//! plus the scheduler name — restores into a different configuration are
//! rejected up front), the state sections in a fixed order, and a
//! trailing FNV-1a digest over all preceding bytes. Torn or bit-flipped
//! blobs fail the digest check before any field is interpreted; the
//! bench journal uses that property to discard a checkpoint torn by a
//! mid-write crash and fall back to the previous good one.
//!
//! Snapshots taken at the top of a cycle boundary restore to a simulator
//! that replays the *identical* remaining event stream: the resumed run
//! re-executes any recalibration or checkpoint hook for the restored
//! cycle exactly as the uninterrupted run did.

mod codec;
mod decode;
mod encode;

use std::error::Error;
use std::fmt;

pub(crate) use codec::fnv1a;
pub(crate) use decode::decode_into;
pub(crate) use encode::encode;

use crate::config::CoreConfig;

/// Why a snapshot blob could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob ends before a complete record was read (torn write).
    Truncated,
    /// The blob does not start with the snapshot magic.
    BadMagic,
    /// The blob's format version is not supported by this build.
    BadVersion(u32),
    /// The blob was captured under a different core configuration or
    /// scheduler than the one it is being restored into.
    ConfigMismatch,
    /// The trailing integrity digest does not match the payload
    /// (bit rot, or a torn write that kept the original length).
    DigestMismatch,
    /// A structurally invalid field value (out-of-range enum code,
    /// table-size mismatch, …).
    Corrupt(String),
    /// The caller-supplied trace does not contain the op this snapshot's
    /// in-flight window references — the snapshot belongs to a different
    /// trace.
    TraceMismatch {
        /// The sequence number that failed rehydration.
        seq: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated mid-record"),
            SnapshotError::BadMagic => write!(f, "not a pipeline snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ConfigMismatch => {
                write!(
                    f,
                    "snapshot was captured under a different config/scheduler"
                )
            }
            SnapshotError::DigestMismatch => write!(f, "snapshot integrity digest mismatch"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::TraceMismatch { seq } => {
                write!(f, "trace does not contain in-flight op seq {seq}")
            }
        }
    }
}

impl Error for SnapshotError {}

/// The config digest bound into every snapshot: FNV-1a over the full
/// `Debug` rendering of the configuration plus the scheduler name. Any
/// knob change (sizes, latencies, scheduler mode or its parameters)
/// changes the digest and invalidates old snapshots, which is exactly
/// the safe behaviour for resumable sweeps.
#[must_use]
pub(crate) fn config_digest(config: &CoreConfig, sched_name: &str) -> u64 {
    fnv1a(format!("{config:?}|{sched_name}").as_bytes())
}
