//! Snapshot deserialization — the exact mirror of `encode`, applied onto
//! a freshly constructed `PipelineState` for the same configuration.

use std::collections::{BTreeMap, VecDeque};

use redsoc_isa::opcode::ExecClass;
use redsoc_isa::reg::ArchReg;
use redsoc_isa::trace::DynOp;
use redsoc_mem::{ContentionStats, HierarchyStats};
use redsoc_timing::pvt::{PvtModel, PvtState};
use redsoc_timing::slack::SlackLut;
use redsoc_timing::slack::WidthClass;
use redsoc_timing::width_predictor::{WidthPredState, WidthPredictorStats};

use crate::branch::{BranchStats, GshareState};
use crate::fu::PoolKind;
use crate::pipeline::state::{Fetched, Ifo, PipelineState};
use crate::pipeline::wakeup::WakeupSnapshot;
use crate::sched::Scheduler;
use crate::stats::{ChainStats, OpCategory, OpMix, SimReport, StallCause};
use crate::tag_pred::{LastArrival, TagPredStats};

use super::codec::{SnapReader, MAGIC, VERSION};
use super::{config_digest, SnapshotError};

fn exec_class_from(code: u8) -> Result<ExecClass, SnapshotError> {
    Ok(match code {
        0 => ExecClass::IntAlu,
        1 => ExecClass::IntMul,
        2 => ExecClass::IntDiv,
        3 => ExecClass::SimdAlu,
        4 => ExecClass::SimdMul,
        5 => ExecClass::Fp,
        6 => ExecClass::Load,
        7 => ExecClass::Store,
        8 => ExecClass::Branch,
        _ => return Err(SnapshotError::Corrupt(format!("bad exec class {code}"))),
    })
}

fn pool_from(code: u8) -> Result<PoolKind, SnapshotError> {
    Ok(match code {
        0 => PoolKind::Alu,
        1 => PoolKind::Simd,
        2 => PoolKind::Fp,
        3 => PoolKind::Mem,
        _ => return Err(SnapshotError::Corrupt(format!("bad pool code {code}"))),
    })
}

fn category_from(code: u8) -> Result<OpCategory, SnapshotError> {
    Ok(match code {
        0 => OpCategory::MemHighLatency,
        1 => OpCategory::MemLowLatency,
        2 => OpCategory::Simd,
        3 => OpCategory::OtherMulti,
        4 => OpCategory::AluLowSlack,
        5 => OpCategory::AluHighSlack,
        6 => OpCategory::Control,
        _ => return Err(SnapshotError::Corrupt(format!("bad op category {code}"))),
    })
}

fn corrupt(msg: String) -> SnapshotError {
    SnapshotError::Corrupt(msg)
}

/// Fetch the traced op for `seq`, verifying the trace actually is the
/// one the snapshot was captured from.
fn op_at(trace: &[DynOp], seq: u64) -> Result<DynOp, SnapshotError> {
    usize::try_from(seq)
        .ok()
        .and_then(|i| trace.get(i))
        .filter(|op| op.seq == seq)
        .copied()
        .ok_or(SnapshotError::TraceMismatch { seq })
}

/// Apply `blob` onto a freshly built `state` (same config) and `sched`
/// (same mode/knobs), rehydrating in-flight ops from `trace`. Returns
/// the trace cursor: the caller resumes the run by feeding
/// `trace[cursor..]` to the simulation loop.
pub(crate) fn decode_into(
    state: &mut PipelineState,
    sched: &mut dyn Scheduler,
    blob: &[u8],
    trace: &[DynOp],
) -> Result<u64, SnapshotError> {
    // A wrong-file diagnosis beats a digest failure, so peek the magic
    // before the integrity check.
    if blob.len() >= MAGIC.len() && blob[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = SnapReader::checked(blob)?;
    if r.raw(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    if r.u64()? != config_digest(&state.config, sched.name()) {
        return Err(SnapshotError::ConfigMismatch);
    }

    // Section: core counters.
    state.cycle = r.u64()?;
    state.base_seq = r.u64()?;
    state.next_seq = r.u64()?;
    state.committed_total = r.u64()?;
    state.dispatched_total = r.u64()?;
    state.rse_used = r.u32()?;
    state.lsq_used = r.u32()?;
    if state.next_seq != state.dispatched_total {
        return Err(corrupt(format!(
            "next_seq {} != dispatched_total {}",
            state.next_seq, state.dispatched_total
        )));
    }

    // Section: recalibration state.
    let bucket_count = state.lut.raw().len();
    if r.len()? != bucket_count {
        return Err(corrupt("slack LUT bucket count mismatch".to_owned()));
    }
    let mut raw = state.lut.raw();
    for slot in &mut raw {
        *slot = r.u32()?;
    }
    state.lut = SlackLut::from_raw(raw);
    state.pvt = PvtModel::import_state(PvtState {
        nominal_ps: r.u32()?,
        max_ps: r.u32()?,
        step_ps: r.u32()?,
        state: r.u64()?,
        current_epoch: r.u64()?,
        current_ps: r.u32()?,
    });

    // Section: rename table.
    if r.len()? != state.rat.len() {
        return Err(corrupt("rename table size mismatch".to_owned()));
    }
    for slot in &mut state.rat {
        *slot = r.opt_u64()?;
    }

    // Section: store-sequence index.
    state.store_seqs = VecDeque::from(r.u64_vec()?);

    // Section: fetch queue — ops rehydrated from the trace.
    let fetchq_len = r.len()?;
    let mut fetchq = VecDeque::with_capacity(fetchq_len);
    for i in 0..fetchq_len {
        let ready_cycle = r.u64()?;
        let op = op_at(trace, state.dispatched_total + i as u64)?;
        fetchq.push_back(Fetched { op, ready_cycle });
    }
    state.fetchq = fetchq;
    state.fetch_stopped = r.bool()?;
    state.pending_redirect = r.opt_u64()?;
    state.fetch_blocked_until = r.u64()?;

    // Section: functional-unit pools.
    for pool in [
        &mut state.alu,
        &mut state.simd,
        &mut state.fp,
        &mut state.mem_ports,
    ] {
        let free_at = r.u64_vec()?;
        pool.import_state(&free_at).map_err(corrupt)?;
    }

    // Section: the in-flight window.
    let window = r.len()?;
    let mut ifos = VecDeque::with_capacity(window);
    for i in 0..window {
        let op = op_at(trace, state.base_seq + i as u64)?;
        ifos.push_back(decode_ifo(&mut r, op)?);
    }
    state.ifos = ifos;

    // Section: event-driven wakeup structures.
    let mut ready: [Vec<u64>; 4] = Default::default();
    for slot in &mut ready {
        *slot = r.u64_vec()?;
    }
    let wheel_slots = r.len()?;
    let mut wheel = Vec::with_capacity(wheel_slots);
    for _ in 0..wheel_slots {
        wheel.push(r.u64_vec()?);
    }
    let far_count = r.len()?;
    let mut far = Vec::with_capacity(far_count);
    for _ in 0..far_count {
        let cycle = r.u64()?;
        far.push((cycle, r.u64_vec()?));
    }
    state
        .wakeup
        .import_state(WakeupSnapshot { ready, wheel, far })
        .map_err(corrupt)?;

    // Section: predictors.
    let wp_count = r.len()?;
    let mut wp_entries = Vec::with_capacity(wp_count);
    for _ in 0..wp_count {
        let width = r.u8()?;
        let conf = r.u8()?;
        wp_entries.push((width, conf));
    }
    let wp_stats = WidthPredictorStats {
        predictions: r.u64()?,
        exact: r.u64()?,
        conservative: r.u64()?,
        aggressive: r.u64()?,
    };
    state
        .width_pred
        .import_state(&WidthPredState {
            entries: wp_entries,
            stats: wp_stats,
        })
        .map_err(corrupt)?;

    let tp_count = r.len()?;
    let mut tp_entries = Vec::with_capacity(tp_count);
    for _ in 0..tp_count {
        let last_is_src1 = r.bool()?;
        let conf = r.u8()?;
        tp_entries.push((last_is_src1, conf));
    }
    let tp_stats = TagPredStats {
        predictions: r.u64()?,
        mispredictions: r.u64()?,
    };
    state
        .tag_pred
        .import_state(&tp_entries, tp_stats)
        .map_err(corrupt)?;

    let gs = GshareState {
        bimodal: r.bytes()?.to_vec(),
        gshare: r.bytes()?.to_vec(),
        chooser: r.bytes()?.to_vec(),
        history: r.u64()?,
        stats: BranchStats {
            predictions: r.u64()?,
            mispredictions: r.u64()?,
        },
    };
    state.gshare.import_state(&gs).map_err(corrupt)?;

    // Section: memory model (opaque blob; the model validates its own
    // tag, geometry and structural limits).
    let mem_blob = r.bytes()?;
    state
        .memory
        .restore(mem_blob)
        .map_err(|e| corrupt(format!("memory state: {e}")))?;

    // Section: accumulated statistics.
    state.report = decode_report(&mut r)?;

    // Section: differential-testing mode flag.
    let scan = r.bool()?;
    #[cfg(feature = "scan-wakeup")]
    {
        state.scan_wakeup = scan;
    }
    #[cfg(not(feature = "scan-wakeup"))]
    if scan {
        return Err(corrupt(
            "snapshot used scan-wakeup mode, not enabled in this build".to_owned(),
        ));
    }

    // Section: scheduler-private state.
    let sched_blob = r.bytes()?;
    sched
        .restore(sched_blob)
        .map_err(|e| corrupt(format!("scheduler state: {e}")))?;

    if !r.exhausted() {
        return Err(corrupt("trailing bytes after final section".to_owned()));
    }
    Ok(state.dispatched_total + fetchq_len as u64)
}

fn decode_ifo(r: &mut SnapReader<'_>, op: DynOp) -> Result<Ifo, SnapshotError> {
    let class = exec_class_from(r.u8()?)?;
    let recyclable = r.bool()?;
    let pool = pool_from(r.u8()?)?;
    let srcs = r.u64_vec()?;
    let pred_last = r.opt_u64()?;
    let gp_tag = r.opt_u64()?;
    let pred_pos = match r.u8()? {
        0 => None,
        flag @ 1..=3 => {
            let arrival = match flag {
                1 => None,
                2 => Some(LastArrival::Src0),
                _ => Some(LastArrival::Src1),
            };
            let i0 = usize::try_from(r.u64()?)
                .map_err(|_| corrupt("pred_pos index overflow".to_owned()))?;
            let i1 = usize::try_from(r.u64()?)
                .map_err(|_| corrupt("pred_pos index overflow".to_owned()))?;
            Some((arrival, i0, i1))
        }
        flag => return Err(corrupt(format!("bad pred_pos flag {flag}"))),
    };
    let ext_ticks = r.u64()?;
    let pred_width =
        WidthClass::from_code(r.u8()?).ok_or_else(|| corrupt("bad width class".to_owned()))?;
    let dst_arch = match r.u8()? {
        0 => None,
        1 => Some(
            ArchReg::from_index(r.u8()? as usize)
                .ok_or_else(|| corrupt("bad arch register index".to_owned()))?,
        ),
        flag => return Err(corrupt(format!("bad dst_arch flag {flag}"))),
    };
    Ok(Ifo {
        op,
        class,
        recyclable,
        pool,
        srcs,
        pred_last,
        gp_tag,
        pred_pos,
        ext_ticks,
        pred_width,
        dst_arch,
        earliest_req: r.u64()?,
        fallback: r.bool()?,
        issued: r.bool()?,
        issue_cycle: r.u64()?,
        sel_ready: r.u64()?,
        avail: r.u64()?,
        done_cycle: r.u64()?,
        transparent: r.bool()?,
        held_two: r.bool()?,
        chain_len: r.u32()?,
        chain_extended: r.bool()?,
        committed: r.bool()?,
        l1_miss: r.bool()?,
        mem_rejected: r.bool()?,
        waiters: r.u64_vec()?,
        in_ready: r.bool()?,
    })
}

fn decode_report(r: &mut SnapReader<'_>) -> Result<SimReport, SnapshotError> {
    let cycles = r.u64()?;
    let committed = r.u64()?;
    let cat_count = r.len()?;
    let mut counts = BTreeMap::new();
    for _ in 0..cat_count {
        let cat = category_from(r.u8()?)?;
        let n = r.u64()?;
        if counts.insert(cat, n).is_some() {
            return Err(corrupt("duplicate op-mix category".to_owned()));
        }
    }
    let len_count = r.len()?;
    let mut lengths = BTreeMap::new();
    for _ in 0..len_count {
        let len = r.u32()?;
        let n = r.u64()?;
        if lengths.insert(len, n).is_some() {
            return Err(corrupt("duplicate chain-length bucket".to_owned()));
        }
    }
    let mut report = SimReport {
        cycles,
        committed,
        op_mix: OpMix::from_counts(counts),
        chains: ChainStats::from_histogram(lengths),
        recycled_ops: r.u64()?,
        egpw_issues: r.u64()?,
        egpw_wasted: r.u64()?,
        gp_mispeculations: r.u64()?,
        fu_stall_cycles: r.u64()?,
        two_cycle_holds: r.u64()?,
        tag_pred: TagPredStats {
            predictions: r.u64()?,
            mispredictions: r.u64()?,
        },
        width_pred: WidthPredictorStats {
            predictions: r.u64()?,
            exact: r.u64()?,
            conservative: r.u64()?,
            aggressive: r.u64()?,
        },
        branch: BranchStats {
            predictions: r.u64()?,
            mispredictions: r.u64()?,
        },
        memory: HierarchyStats {
            l1_hits: r.u64()?,
            l2_hits: r.u64()?,
            mem_accesses: r.u64()?,
        },
        mem_contention: ContentionStats {
            mshr_rejects: r.u64()?,
            mshr_merges: r.u64()?,
            port_wait_cycles: r.u64()?,
            dram_wait_cycles: r.u64()?,
        },
        stl_forwards: r.u64()?,
        ..SimReport::default()
    };
    for cause in StallCause::all() {
        let n = r.u64()?;
        set_stall(&mut report, cause, n);
    }
    Ok(report)
}

fn set_stall(report: &mut SimReport, cause: StallCause, n: u64) {
    let slot = match cause {
        StallCause::Busy => &mut report.stalls.busy,
        StallCause::Frontend => &mut report.stalls.frontend,
        StallCause::RobFull => &mut report.stalls.rob_full,
        StallCause::RsFull => &mut report.stalls.rs_full,
        StallCause::LsqFull => &mut report.stalls.lsq_full,
        StallCause::FuContention => &mut report.stalls.fu_contention,
        StallCause::Memory => &mut report.stalls.memory,
        StallCause::SlackHold => &mut report.stalls.slack_hold,
        StallCause::ExecLatency => &mut report.stalls.exec_latency,
        StallCause::Mshr => &mut report.stalls.mshr,
    };
    *slot = n;
}
