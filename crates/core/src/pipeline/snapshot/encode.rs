//! Snapshot serialization. Section order here is the format: `decode`
//! mirrors it read-for-read, and `SnapReader::exhausted` catches drift.

use redsoc_isa::opcode::ExecClass;
use redsoc_timing::pvt::PvtState;

use crate::fu::PoolKind;
use crate::pipeline::state::{Ifo, PipelineState};
use crate::sched::Scheduler;
use crate::stats::{OpCategory, SimReport, StallCause};
use crate::tag_pred::LastArrival;

use super::codec::{SnapWriter, MAGIC, VERSION};
use super::config_digest;

pub(crate) fn exec_class_code(class: ExecClass) -> u8 {
    match class {
        ExecClass::IntAlu => 0,
        ExecClass::IntMul => 1,
        ExecClass::IntDiv => 2,
        ExecClass::SimdAlu => 3,
        ExecClass::SimdMul => 4,
        ExecClass::Fp => 5,
        ExecClass::Load => 6,
        ExecClass::Store => 7,
        ExecClass::Branch => 8,
    }
}

pub(crate) fn pool_code(pool: PoolKind) -> u8 {
    match pool {
        PoolKind::Alu => 0,
        PoolKind::Simd => 1,
        PoolKind::Fp => 2,
        PoolKind::Mem => 3,
    }
}

pub(crate) fn category_code(cat: OpCategory) -> u8 {
    match cat {
        OpCategory::MemHighLatency => 0,
        OpCategory::MemLowLatency => 1,
        OpCategory::Simd => 2,
        OpCategory::OtherMulti => 3,
        OpCategory::AluLowSlack => 4,
        OpCategory::AluHighSlack => 5,
        OpCategory::Control => 6,
    }
}

/// Serialize the full pipeline state plus the scheduler's private blob.
///
/// Must be called at a cycle boundary (top of the simulation loop, before
/// the cycle's stages run) — the wakeup scratch buffers are empty there,
/// which `WakeupState::export_state` debug-asserts.
pub(crate) fn encode(state: &PipelineState, sched: &dyn Scheduler) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.bytes_raw(&MAGIC);
    w.u32(VERSION);
    w.u64(config_digest(&state.config, sched.name()));

    // Section: core counters.
    w.u64(state.cycle);
    w.u64(state.base_seq);
    w.u64(state.next_seq);
    w.u64(state.committed_total);
    w.u64(state.dispatched_total);
    w.u32(state.rse_used);
    w.u32(state.lsq_used);

    // Section: recalibration state (active LUT + PVT walk). `base_lut`
    // and `quant` are config-derived and rebuilt on restore.
    let raw = state.lut.raw();
    w.len(raw.len());
    for ps in raw {
        w.u32(ps);
    }
    encode_pvt(&mut w, state.pvt.export_state());

    // Section: rename table.
    w.len(state.rat.len());
    for &slot in &state.rat {
        w.opt_u64(slot);
    }

    // Section: store-sequence index.
    let stores: Vec<u64> = state.store_seqs.iter().copied().collect();
    w.u64_slice(&stores);

    // Section: fetch queue. Ops are rehydrated from the trace at
    // sequence numbers [dispatched_total, dispatched_total + len).
    w.len(state.fetchq.len());
    for f in &state.fetchq {
        w.u64(f.ready_cycle);
    }
    w.bool(state.fetch_stopped);
    w.opt_u64(state.pending_redirect);
    w.u64(state.fetch_blocked_until);

    // Section: functional-unit pools (busy-until times).
    w.u64_slice(state.alu.export_state());
    w.u64_slice(state.simd.export_state());
    w.u64_slice(state.fp.export_state());
    w.u64_slice(state.mem_ports.export_state());

    // Section: the in-flight window.
    w.len(state.ifos.len());
    for ifo in &state.ifos {
        encode_ifo(&mut w, ifo);
    }

    // Section: event-driven wakeup structures.
    let wake = state.wakeup.export_state();
    for ready in &wake.ready {
        w.u64_slice(ready);
    }
    w.len(wake.wheel.len());
    for slot in &wake.wheel {
        w.u64_slice(slot);
    }
    w.len(wake.far.len());
    for (cycle, seqs) in &wake.far {
        w.u64(*cycle);
        w.u64_slice(seqs);
    }

    // Section: predictors.
    let wp = state.width_pred.export_state();
    w.len(wp.entries.len());
    for (width, conf) in wp.entries {
        w.u8(width);
        w.u8(conf);
    }
    w.u64(wp.stats.predictions);
    w.u64(wp.stats.exact);
    w.u64(wp.stats.conservative);
    w.u64(wp.stats.aggressive);

    let (tp_entries, tp_stats) = state.tag_pred.export_state();
    w.len(tp_entries.len());
    for (last_is_src1, conf) in tp_entries {
        w.bool(last_is_src1);
        w.u8(conf);
    }
    w.u64(tp_stats.predictions);
    w.u64(tp_stats.mispredictions);

    let gs = state.gshare.export_state();
    w.bytes(&gs.bimodal);
    w.bytes(&gs.gshare);
    w.bytes(&gs.chooser);
    w.u64(gs.history);
    w.u64(gs.stats.predictions);
    w.u64(gs.stats.mispredictions);

    // Section: memory model (opaque, self-validating — the model encodes
    // its own geometry/limits and rejects mismatched blobs on restore).
    w.bytes(&state.memory.snapshot());

    // Section: accumulated statistics.
    encode_report(&mut w, &state.report);

    // Section: differential-testing mode flag. Restoring a scan-wakeup
    // snapshot into a build without the feature is rejected.
    #[cfg(feature = "scan-wakeup")]
    w.bool(state.scan_wakeup);
    #[cfg(not(feature = "scan-wakeup"))]
    w.bool(false);

    // Section: scheduler-private state.
    w.bytes(&sched.snapshot());

    w.finish()
}

fn encode_pvt(w: &mut SnapWriter, pvt: PvtState) {
    w.u32(pvt.nominal_ps);
    w.u32(pvt.max_ps);
    w.u32(pvt.step_ps);
    w.u64(pvt.state);
    w.u64(pvt.current_epoch);
    w.u32(pvt.current_ps);
}

fn encode_ifo(w: &mut SnapWriter, ifo: &Ifo) {
    // `op` is rehydrated from the trace by sequence number; everything
    // else round-trips verbatim.
    w.u8(exec_class_code(ifo.class));
    w.bool(ifo.recyclable);
    w.u8(pool_code(ifo.pool));
    w.u64_slice(&ifo.srcs);
    w.opt_u64(ifo.pred_last);
    w.opt_u64(ifo.gp_tag);
    match ifo.pred_pos {
        None => w.u8(0),
        Some((arrival, i0, i1)) => {
            w.u8(match arrival {
                None => 1,
                Some(LastArrival::Src0) => 2,
                Some(LastArrival::Src1) => 3,
            });
            w.u64(i0 as u64);
            w.u64(i1 as u64);
        }
    }
    w.u64(ifo.ext_ticks);
    w.u8(ifo.pred_width.code());
    match ifo.dst_arch {
        None => w.u8(0),
        Some(r) => {
            w.u8(1);
            #[allow(clippy::cast_possible_truncation)] // index < NUM_ARCH_REGS = 65
            w.u8(r.index() as u8);
        }
    }
    w.u64(ifo.earliest_req);
    w.bool(ifo.fallback);
    w.bool(ifo.issued);
    w.u64(ifo.issue_cycle);
    w.u64(ifo.sel_ready);
    w.u64(ifo.avail);
    w.u64(ifo.done_cycle);
    w.bool(ifo.transparent);
    w.bool(ifo.held_two);
    w.u32(ifo.chain_len);
    w.bool(ifo.chain_extended);
    w.bool(ifo.committed);
    w.bool(ifo.l1_miss);
    w.bool(ifo.mem_rejected);
    w.u64_slice(&ifo.waiters);
    w.bool(ifo.in_ready);
}

fn encode_report(w: &mut SnapWriter, report: &SimReport) {
    w.u64(report.cycles);
    w.u64(report.committed);
    let counts = report.op_mix.export_counts();
    w.len(counts.len());
    for (&cat, &n) in counts {
        w.u8(category_code(cat));
        w.u64(n);
    }
    let lengths = report.chains.histogram();
    w.len(lengths.len());
    for (&len, &n) in lengths {
        w.u32(len);
        w.u64(n);
    }
    w.u64(report.recycled_ops);
    w.u64(report.egpw_issues);
    w.u64(report.egpw_wasted);
    w.u64(report.gp_mispeculations);
    w.u64(report.fu_stall_cycles);
    w.u64(report.two_cycle_holds);
    w.u64(report.tag_pred.predictions);
    w.u64(report.tag_pred.mispredictions);
    w.u64(report.width_pred.predictions);
    w.u64(report.width_pred.exact);
    w.u64(report.width_pred.conservative);
    w.u64(report.width_pred.aggressive);
    w.u64(report.branch.predictions);
    w.u64(report.branch.mispredictions);
    w.u64(report.memory.l1_hits);
    w.u64(report.memory.l2_hits);
    w.u64(report.memory.mem_accesses);
    w.u64(report.mem_contention.mshr_rejects);
    w.u64(report.mem_contention.mshr_merges);
    w.u64(report.mem_contention.port_wait_cycles);
    w.u64(report.mem_contention.dram_wait_cycles);
    w.u64(report.stl_forwards);
    for cause in StallCause::all() {
        w.u64(report.stalls.count(cause));
    }
}
