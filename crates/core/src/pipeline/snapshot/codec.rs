//! Byte-level framing for pipeline snapshots.
//!
//! Fixed-width little-endian primitives with a trailing FNV-1a digest —
//! deliberately boring. The format is versioned and self-checking but
//! *not* self-describing: decode order must mirror encode order exactly,
//! which is why both live next to each other in this module tree.

use super::SnapshotError;

/// Snapshot file magic ("RSNP").
pub(super) const MAGIC: [u8; 4] = *b"RSNP";

/// Current snapshot format version.
///
/// v2: the memory section became the [`MemoryModel`]'s opaque
/// self-validating blob (MSHR/port/DRAM-queue state included), the
/// in-flight window gained the `mem_rejected` flag and the report gained
/// the contention counters and `stl_forwards`.
///
/// [`MemoryModel`]: redsoc_mem::MemoryModel
pub(super) const VERSION: u32 = 2;

/// FNV-1a 64-bit over `bytes` — the same digest family the bench journal
/// uses, kept dependency-free.
#[must_use]
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Append-only snapshot encoder.
pub(super) struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub(super) fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    pub(super) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(super) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(super) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(super) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(super) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    pub(super) fn bytes(&mut self, v: &[u8]) {
        self.len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Raw bytes with no length prefix (fixed-size fields like the magic).
    pub(super) fn bytes_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// A collection length (u32 on the wire; simulated structures never
    /// approach 4G entries).
    pub(super) fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }

    pub(super) fn u64_slice(&mut self, v: &[u64]) {
        self.len(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Seal the snapshot: append the FNV-1a digest of everything written
    /// so far and return the finished buffer.
    pub(super) fn finish(mut self) -> Vec<u8> {
        let digest = fnv1a(&self.buf);
        self.buf.extend_from_slice(&digest.to_le_bytes());
        self.buf
    }
}

/// Cursor-based snapshot decoder. Every read is bounds-checked and
/// returns [`SnapshotError::Truncated`] past the end.
pub(super) struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Verify the trailing digest of `blob` and return a reader over the
    /// payload (digest excluded).
    pub(super) fn checked(blob: &'a [u8]) -> Result<Self, SnapshotError> {
        if blob.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let (payload, tail) = blob.split_at(blob.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().map_err(|_| SnapshotError::Truncated)?);
        if fnv1a(payload) != stored {
            return Err(SnapshotError::DigestMismatch);
        }
        Ok(SnapReader {
            buf: payload,
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(super) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Raw bytes with no length prefix (fixed-size fields like the magic).
    pub(super) fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    pub(super) fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    pub(super) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(
            b.try_into().map_err(|_| SnapshotError::Truncated)?,
        ))
    }

    pub(super) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(
            b.try_into().map_err(|_| SnapshotError::Truncated)?,
        ))
    }

    pub(super) fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            b => Err(SnapshotError::Corrupt(format!("bad option byte {b}"))),
        }
    }

    /// A collection length, sanity-capped so a corrupt length cannot
    /// trigger a huge allocation before the next bounds check fires.
    pub(super) fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(SnapshotError::Corrupt(format!(
                "length {n} exceeds snapshot size"
            )));
        }
        Ok(n)
    }

    pub(super) fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len()?;
        self.take(n)
    }

    pub(super) fn u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Whether every payload byte has been consumed — decode asserts this
    /// so format drift between encode and decode fails loudly.
    pub(super) fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.opt_u64(None);
        w.opt_u64(Some(42));
        w.bytes(b"hello");
        w.u64_slice(&[1, 2, 3]);
        let blob = w.finish();

        let mut r = SnapReader::checked(&blob).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        assert!(r.exhausted());
    }

    #[test]
    fn flipped_bit_fails_digest() {
        let mut w = SnapWriter::new();
        w.u64(0x1234_5678_9ABC_DEF0);
        let mut blob = w.finish();
        blob[3] ^= 0x40;
        assert!(matches!(
            SnapReader::checked(&blob),
            Err(SnapshotError::DigestMismatch)
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.u64_slice(&[9; 16]);
        let blob = w.finish();
        // Chopping anywhere must yield Truncated or DigestMismatch, never
        // a panic or silent success.
        for cut in 0..blob.len() {
            let r = SnapReader::checked(&blob[..cut]);
            assert!(r.is_err() || cut == blob.len());
        }
    }

    #[test]
    fn reads_past_end_are_truncated() {
        let mut w = SnapWriter::new();
        w.u8(1);
        let blob = w.finish();
        let mut r = SnapReader::checked(&blob).unwrap();
        assert_eq!(r.u8().unwrap(), 1);
        assert!(matches!(r.u64(), Err(SnapshotError::Truncated)));
    }
}
