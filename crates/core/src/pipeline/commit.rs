//! Commit stage: in-order retirement from the reorder buffer, store
//! writeback into the memory hierarchy, Fig. 10 op-mix classification and
//! lazy window retirement (chain statistics).
//!
//! [`Scheduler::on_writeback`] fires for every retiring op — the
//! extension point for designs that train predictors on observed
//! completion behaviour.

// Invariant `expect`s in this module are deliberate: each one guards a
// structural pipeline invariant that only a simulator bug can violate
// (never operator input), and a loud abort — isolated and quarantined
// per job by the bench supervisor — beats silently corrupting a
// result. The per-cycle hot path stays `Result`-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use redsoc_isa::instruction::Instr;
use redsoc_timing::slack::WidthClass;

use crate::events::{EventSink, PipeEvent};
use crate::sched::Scheduler;
use crate::stats::OpCategory;

use super::state::PipelineState;

impl PipelineState {
    pub(crate) fn commit<S: EventSink>(&mut self, sched: &dyn Scheduler, sink: &mut S) {
        for _ in 0..self.config.frontend_width {
            let head_idx = (self.committed_total - self.base_seq) as usize;
            let Some(head) = self.ifos.get(head_idx) else {
                break;
            };
            if !head.issued || self.cycle < head.done_cycle {
                break;
            }
            sched.on_writeback(head, self.cycle);
            // `DynOp` and the flags are Copy: no full-entry clone needed.
            let (op, mut l1_miss, done_cycle) = (head.op, head.l1_miss, head.done_cycle);
            // Stores update the memory system at retirement. The port
            // contract guarantees stores are never structurally rejected
            // (they allocate no MSHR), so an `Err` here is a model bug.
            if let Instr::Store { .. } = op.instr {
                let addr = u64::from(op.eff_addr.expect("stores carry addresses"));
                let res = self
                    .memory
                    .request(op.seq, op.pc, addr, true, self.cycle)
                    .expect("memory models never reject stores");
                l1_miss = res.outcome.is_high_latency();
            }
            // Fig. 10 classification uses the *actual* operand width.
            let cat = OpCategory::classify(
                &op.instr,
                l1_miss,
                WidthClass::from_bits(op.eff_bits),
                &self.lut,
            );
            self.report.op_mix.record(cat);
            if op.instr.is_mem() {
                self.lsq_used -= 1;
            }
            self.ifos[head_idx].committed = true;
            self.committed_total += 1;
            if S::ENABLED {
                sink.record(
                    self.cycle,
                    &PipeEvent::Writeback {
                        seq: op.seq,
                        done_cycle,
                    },
                );
                sink.record(
                    self.cycle,
                    &PipeEvent::Commit {
                        seq: op.seq,
                        pc: op.pc,
                    },
                );
            }
        }
        // Retire old entries lazily, keeping a window behind the head so
        // chain statistics and RAT references stay resolvable.
        let lag = u64::from(self.config.rob_entries) + 64;
        while self.base_seq + lag < self.committed_total {
            let gone = self.ifos.pop_front().expect("window non-empty");
            debug_assert!(gone.committed);
            if gone.chain_len >= 2 && !gone.chain_extended {
                self.report.chains.record(gone.chain_len);
            }
            self.base_seq += 1;
        }
        // Keep the store index in step with the window slide.
        while self.store_seqs.front().is_some_and(|&s| s < self.base_seq) {
            self.store_seqs.pop_front();
        }
    }

    /// Flush remaining chain records at end of simulation.
    pub(crate) fn drain_chain_stats(&mut self) {
        while let Some(gone) = self.ifos.pop_front() {
            if gone.chain_len >= 2 && !gone.chain_extended {
                self.report.chains.record(gone.chain_len);
            }
            self.base_seq += 1;
        }
    }
}
