//! Issue stage: reservation-station wakeup, per-pool select arbitration
//! and the issue attempt itself.
//!
//! The mechanism here is fixed — request gathering, grant slots,
//! scoreboard validation bookkeeping, FU reservation, event emission.
//! The *policy* each step consults is the run's
//! [`Scheduler`]: [`Scheduler::wakeup`] decides
//! who requests (and whether speculatively), [`Scheduler::select`] orders
//! each pool's requests, [`Scheduler::spec_grant_usable`] makes the
//! recycling decision for grandparent-speculative grants,
//! [`Scheduler::on_issue`] times recyclable completions and
//! [`Scheduler::post_issue`] may fuse dependents into the same cycle.

// Invariant `expect`s in this module are deliberate: each one guards a
// structural pipeline invariant that only a simulator bug can violate
// (never operator input), and a loud abort — isolated and quarantined
// per job by the bench supervisor — beats silently corrupting a
// result. The per-cycle hot path stays `Result`-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::events::{EventSink, PipeEvent};
use crate::sched::{IssueArgs, Scheduler, SelectRequest};
use crate::tag_pred::LastArrival;

use super::exec::LoadPath;
use super::state::PipelineState;
use super::wakeup::POOLS;

/// Outcome of one issue attempt inside the select pass.
pub(crate) enum IssueOutcome {
    Issued,
    TagMispredict,
    SpecNotRecyclable,
    GpMispeculation,
    /// The memory model structurally rejected the load (MSHRs full); the
    /// entry is parked until the model's retry horizon.
    MemRejected,
}

impl PipelineState {
    /// One wakeup/select/issue pass. Returns whether a non-speculative
    /// request was denied a unit this cycle (the FU-contention signal).
    ///
    /// Event-driven: requests are gathered from the per-pool ready sets
    /// maintained by [`crate::pipeline::wakeup`], so the pass costs
    /// O(ready + broadcasts) rather than O(window). With the `scan-wakeup`
    /// feature the legacy full-window scan can be selected at runtime for
    /// differential testing; both paths produce identical event streams.
    pub(crate) fn select_and_issue<S: EventSink>(
        &mut self,
        sched: &dyn Scheduler,
        sink: &mut S,
    ) -> bool {
        #[cfg(feature = "scan-wakeup")]
        if self.scan_wakeup {
            return self.select_and_issue_scan(sched, sink);
        }

        // Fire due timer-wheel alarms, refreshing ready-set membership.
        self.wakeup_drain(sched);

        // Gather requests per pool — from the ready sets only. Members are
        // re-evaluated so a stale candidate simply declines to bid (and a
        // speculative EGPW bid upgrades once its parent issues); blocked
        // loads poll their store hazard from inside the ready set, exactly
        // as the full scan did.
        for pi in 0..POOLS.len() {
            debug_assert!(self.wakeup.requests[pi].is_empty());
            for i in 0..self.wakeup.ready[pi].len() {
                let seq = self.wakeup.ready[pi][i];
                let req = {
                    let x = self.ifo(seq).expect("ready entries are in flight");
                    debug_assert!(
                        !x.issued && !x.committed && x.earliest_req <= self.cycle,
                        "stale ready-set entry {seq}"
                    );
                    if matches!(x.op.instr, redsoc_isa::instruction::Instr::Load { .. })
                        && self.load_blocked(x)
                    {
                        None
                    } else {
                        sched.wakeup(self, x)
                    }
                };
                if let Some(req) = req {
                    self.wakeup.requests[pi].push(req);
                }
            }
            // Canonical pre-select order: ascending seq, exactly as the
            // window scan produced. Seqs are unique, so the unstable sort
            // is deterministic (and allocation-free).
            self.wakeup.requests[pi].sort_unstable_by_key(|r| r.seq);
        }

        let stalled = self.issue_from_requests(sched, sink);

        // Drop issued/deferred entries from the ready sets; deferred ones
        // have their re-entry alarm armed by `wakeup_defer`.
        self.wakeup_compact();

        if stalled {
            self.report.fu_stall_cycles += 1;
        }
        stalled
    }

    /// The legacy O(window) request gather, kept compiled under the
    /// `scan-wakeup` feature as the differential-testing reference for
    /// the event-driven path (see `Simulator::with_scan_wakeup`).
    #[cfg(feature = "scan-wakeup")]
    fn select_and_issue_scan<S: EventSink>(&mut self, sched: &dyn Scheduler, sink: &mut S) -> bool {
        let mut requests = core::mem::take(&mut self.wakeup.requests);
        debug_assert!(requests.iter().all(Vec::is_empty));
        for x in &self.ifos {
            if x.committed || x.issued || x.earliest_req > self.cycle {
                continue;
            }
            if matches!(x.op.instr, redsoc_isa::instruction::Instr::Load { .. })
                && self.load_blocked(x)
            {
                continue;
            }
            if let Some(req) = sched.wakeup(self, x) {
                requests[super::wakeup::pool_index(x.pool)].push(req);
            }
        }
        self.wakeup.requests = requests;
        let stalled = self.issue_from_requests(sched, sink);
        if stalled {
            self.report.fu_stall_cycles += 1;
        }
        stalled
    }

    /// Select and grant the per-pool requests staged in the shared
    /// scratch buffers — the half of the issue pass common to the
    /// event-driven and scan paths. Clears the request buffers.
    fn issue_from_requests<S: EventSink>(&mut self, sched: &dyn Scheduler, sink: &mut S) -> bool {
        let exec_cycle = self.cycle + 1;
        let mut stalled = false;
        let mut granted_this_cycle = core::mem::take(&mut self.wakeup.granted);
        debug_assert!(granted_this_cycle.is_empty());

        for (pi, kind) in POOLS.iter().copied().enumerate() {
            let mut reqs = core::mem::take(&mut self.wakeup.requests[pi]);
            if reqs.is_empty() {
                self.wakeup.requests[pi] = reqs;
                continue;
            }
            sched.select(&mut reqs);
            let mut free = self.pool(kind).free_units(exec_cycle);
            // Skewed-selection invariant (§IV-D): while any non-speculative
            // request in this pool is still pending, no speculative request
            // may be granted. Tracked here and debug-asserted per grant.
            let mut nonspec_pending = reqs.iter().filter(|r| !r.spec).count();
            for &SelectRequest { seq, spec } in &reqs {
                if free == 0 {
                    if !spec {
                        stalled = true;
                    }
                    continue;
                }
                if spec {
                    debug_assert!(
                        !sched.skewed_select() || nonspec_pending == 0,
                        "skewed select granted speculative seq {seq} with \
                         {nonspec_pending} non-speculative request(s) pending"
                    );
                } else {
                    nonspec_pending -= 1;
                }
                free -= 1; // the grant slot is consumed even if wasted
                if S::ENABLED {
                    sink.record(self.cycle, &PipeEvent::SelectGrant { seq, spec });
                }
                match self.try_issue(sched, seq, spec, &granted_this_cycle, sink) {
                    IssueOutcome::Issued => granted_this_cycle.push(seq),
                    IssueOutcome::TagMispredict
                    | IssueOutcome::SpecNotRecyclable
                    | IssueOutcome::GpMispeculation
                    | IssueOutcome::MemRejected => {}
                }
            }
            reqs.clear();
            self.wakeup.requests[pi] = reqs;
        }
        granted_this_cycle.clear();
        self.wakeup.granted = granted_this_cycle;
        stalled
    }

    /// Attempt to issue `seq` (granted by select this cycle).
    #[allow(clippy::too_many_lines)]
    pub(crate) fn try_issue<S: EventSink>(
        &mut self,
        sched: &dyn Scheduler,
        seq: u64,
        spec: bool,
        granted: &[u64],
        sink: &mut S,
    ) -> IssueOutcome {
        let t = self.cycle;
        let q = self.quant;
        let arrival = q.cycle_start(t + 1);
        // Snapshot the Copy scalars once; `srcs` — the only non-Copy field
        // needed — is re-borrowed per read-only phase below, which keeps
        // the hot path free of a full-entry clone.
        let (op, class, recyclable, pool, pred_last, pred_pos, ext_ticks, pred_width, fallback) = {
            let x = self.ifo(seq).expect("requesting entry exists");
            (
                x.op,
                x.class,
                x.recyclable,
                x.pool,
                x.pred_last,
                x.pred_pos,
                x.ext_ticks,
                x.pred_width,
                x.fallback,
            )
        };

        if spec {
            // EGPW grant: useful only when the parent issued *this* cycle
            // and leaves recyclable slack within its execution cycle
            // (§IV-A, §IV-D "recycling decision").
            let Some(parent_tag) = pred_last else {
                self.report.egpw_wasted += 1;
                if S::ENABLED {
                    sink.record(t, &PipeEvent::SpecWasted { seq });
                }
                return IssueOutcome::SpecNotRecyclable;
            };
            let parent_granted = granted.contains(&parent_tag);
            if !parent_granted {
                if sched.skewed_select() {
                    // Skewed arbitration: the child can never race ahead of
                    // its parent; the grant is simply unused.
                    self.report.egpw_wasted += 1;
                    if S::ENABLED {
                        sink.record(t, &PipeEvent::SpecWasted { seq });
                    }
                    return IssueOutcome::SpecNotRecyclable;
                }
                // Unskewed: the child was selected ahead of its parent —
                // a GP-mispeculation needing recovery (§IV-B).
                self.report.gp_mispeculations += 1;
                let pen = u64::from(self.config.sched.tag_mispredict_penalty);
                let x = self.ifo_mut(seq).expect("entry");
                x.earliest_req = t + pen;
                self.wakeup_defer(seq);
                if S::ENABLED {
                    sink.record(
                        t,
                        &PipeEvent::GpMispeculation {
                            seq,
                            retry_cycle: t + pen,
                        },
                    );
                }
                return IssueOutcome::GpMispeculation;
            }
            let usable = {
                let x = self.ifo(seq).expect("requesting entry exists");
                let p = self.ifo(parent_tag).expect("granted parent in flight");
                sched.spec_grant_usable(self, x, p, t)
            };
            if !usable {
                self.report.egpw_wasted += 1;
                if S::ENABLED {
                    sink.record(t, &PipeEvent::SpecWasted { seq });
                }
                return IssueOutcome::SpecNotRecyclable;
            }
        } else {
            // Scoreboard validation of the last-arrival prediction
            // (operational design, §IV-C): every operand *not* predicted
            // last must already be available.
            let use_pred = sched.uses_tag_prediction(recyclable) && !fallback;
            if use_pred {
                // `late_is_src0` resolves the misprediction direction while
                // the srcs borrow is live.
                let not_ready: Option<bool> = {
                    let x = self.ifo(seq).expect("requesting entry exists");
                    x.srcs
                        .iter()
                        .copied()
                        .find(|&s| {
                            Some(s) != pred_last && self.src_sel_ready(s, x).is_none_or(|r| r > t)
                        })
                        .map(|late| {
                            matches!(pred_pos, Some((Some(_), i0, _)) if x.srcs.get(i0) == Some(&late))
                        })
                };
                if let Some(late_is_src0) = not_ready {
                    // Tag mispredict: recover by falling back to
                    // all-operand wakeup after a small penalty.
                    if let Some((Some(pred), _i0, _i1)) = pred_pos {
                        let actual = if late_is_src0 {
                            LastArrival::Src0
                        } else {
                            LastArrival::Src1
                        };
                        self.tag_pred.update(op.pc, pred, actual);
                    }
                    let pen = u64::from(self.config.sched.tag_mispredict_penalty);
                    let xm = self.ifo_mut(seq).expect("entry");
                    xm.fallback = true;
                    xm.earliest_req = t + pen;
                    self.wakeup_defer(seq);
                    if S::ENABLED {
                        sink.record(
                            t,
                            &PipeEvent::TagMispredict {
                                seq,
                                retry_cycle: t + pen,
                            },
                        );
                    }
                    return IssueOutcome::TagMispredict;
                }
                // Correct prediction: train towards the observed behaviour.
                if let Some((Some(pred), _, _)) = pred_pos {
                    self.tag_pred.update(op.pc, pred, pred);
                }
            }
        }

        // Confidence warm-up: when no prediction was consumed, train the
        // predictor with the observed last-arrival order of the two
        // candidates.
        if let Some((None, i0, i1)) = pred_pos {
            let actual = {
                let x = self.ifo(seq).expect("requesting entry exists");
                let ready = |pos: usize| {
                    x.srcs
                        .get(pos)
                        .and_then(|&s| self.ifo(s))
                        .map_or(0, |p| p.sel_ready)
                };
                if ready(i0) > ready(i1) {
                    LastArrival::Src0
                } else {
                    LastArrival::Src1
                }
            };
            self.tag_pred.train_only(op.pc, actual);
        }

        // Compute the evaluation start: the latest source availability,
        // never earlier than FU arrival.
        let (start, trans_src) = {
            let x = self.ifo(seq).expect("requesting entry exists");
            let mut start = arrival;
            let mut trans_src: Option<u64> = None;
            for &s in &x.srcs {
                let (a, transparent) = self.avail_for(sched, s, x);
                if a > start {
                    start = a;
                    trans_src = transparent.then_some(s);
                } else if a == start && transparent && start > arrival {
                    trans_src = Some(s);
                }
            }
            (start, trans_src)
        };
        if start >= q.cycle_start(t + 2) {
            // Defensive: the value only materialises after our FU hold.
            let xm = self.ifo_mut(seq).expect("entry");
            xm.earliest_req = t + 1;
            self.wakeup_defer(seq);
            return IssueOutcome::SpecNotRecyclable;
        }

        // Per-class completion/occupancy: recyclable single-cycle ops are
        // timed by the scheduler policy; everything else is mechanism.
        let (timing, path) = if recyclable {
            let args = IssueArgs {
                op,
                class,
                ext_ticks,
                pred_width,
                start,
                cycle: t,
            };
            (sched.on_issue(self, &args), LoadPath::NotMem)
        } else {
            match self.multi_cycle_timing(seq, &op, class, t) {
                Ok(r) => r,
                Err(rej) => {
                    // Structural rejection: every MSHR is busy with a
                    // different line. Park the entry until the model's
                    // retry horizon (the earliest in-flight fill); no FU
                    // is consumed, though the grant slot is — exactly as
                    // for a tag mispredict.
                    let retry_cycle = rej.retry_at.max(t + 1);
                    let xm = self.ifo_mut(seq).expect("entry");
                    xm.mem_rejected = true;
                    xm.earliest_req = retry_cycle;
                    self.wakeup_defer(seq);
                    if S::ENABLED {
                        sink.record(t, &PipeEvent::MemReject { seq, retry_cycle });
                    }
                    return IssueOutcome::MemRejected;
                }
            }
        };
        let l1_miss = matches!(&path, LoadPath::Mem(r) if r.outcome.is_high_latency());
        let (sel_ready, avail, done_cycle, occupancy, held_two) = (
            timing.sel_ready,
            timing.avail,
            timing.done_cycle,
            timing.occupancy,
            timing.held_two,
        );

        // Fusion (MOS) is attempted after the producer issues (below).
        let unit = self.pool_mut(pool).reserve(t + 1, occupancy.max(1));
        debug_assert!(unit.is_some(), "select only grants when a unit is free");
        let unit = unit.unwrap_or(0);

        let transparent = start > arrival;
        // Chain accounting (Fig. 11).
        let (chain_len, producer_to_extend) = if transparent {
            if let Some(ptag) = trans_src {
                let plen = self.ifo(ptag).map_or(0, |p| p.chain_len);
                (plen + 1, Some(ptag))
            } else {
                (1, None)
            }
        } else {
            (1, None)
        };
        if let Some(ptag) = producer_to_extend {
            if let Some(p) = self.ifo_mut(ptag) {
                p.chain_extended = true;
            }
        }
        if transparent {
            self.report.recycled_ops += 1;
            if spec {
                self.report.egpw_issues += 1;
            }
        }

        {
            let xm = self.ifo_mut(seq).expect("entry");
            xm.issued = true;
            xm.issue_cycle = t;
            xm.sel_ready = sel_ready;
            xm.avail = avail;
            xm.done_cycle = done_cycle;
            xm.transparent = transparent;
            xm.held_two = held_two;
            xm.chain_len = chain_len;
            xm.l1_miss = l1_miss;
            xm.mem_rejected = false;
        }
        match path {
            LoadPath::Forwarded { store_seq } => {
                self.report.stl_forwards += 1;
                if S::ENABLED {
                    sink.record(t, &PipeEvent::StoreForward { seq, store_seq });
                }
            }
            LoadPath::Mem(res)
                if S::ENABLED && (res.mshr_merged || res.port_wait > 0 || res.queue_wait > 0) =>
            {
                sink.record(
                    t,
                    &PipeEvent::MemContention {
                        seq,
                        merged: res.mshr_merged,
                        port_wait: res.port_wait,
                        queue_wait: res.queue_wait,
                    },
                );
            }
            _ => {}
        }
        self.rse_used -= 1;
        if S::ENABLED {
            sink.record(
                t,
                &PipeEvent::Issue {
                    seq,
                    pool,
                    unit,
                    start_tick: start,
                    avail_tick: avail,
                    occupancy: occupancy.max(1),
                    transparent,
                    spec,
                },
            );
            sink.record(
                t,
                &PipeEvent::CiBroadcast {
                    seq,
                    avail_tick: avail,
                },
            );
        }

        // Post-issue policy: a fusing scheduler (MOS) packs dependent ops
        // into the producer's execution cycle; the pipeline emits their
        // issue events (so sinks see the same stream as a real issue) and
        // their wakeup broadcasts. The producer's own CI-bus broadcast is
        // deferred until after the hook so a fusing policy can still read
        // its intact waiter list (the subscribed-consumer index).
        for fused in sched.post_issue(self, seq, t) {
            self.wakeup_broadcast(fused.seq);
            if S::ENABLED {
                sink.record(
                    t,
                    &PipeEvent::Issue {
                        seq: fused.seq,
                        pool,
                        unit,
                        start_tick: q.cycle_start(t + 1) + fused.start_offset,
                        avail_tick: q.cycle_start(t + 2),
                        occupancy: 0, // fused: rides the producer's unit
                        transparent: false,
                        spec: false,
                    },
                );
                sink.record(
                    t,
                    &PipeEvent::CiBroadcast {
                        seq: fused.seq,
                        avail_tick: q.cycle_start(t + 2),
                    },
                );
            }
        }
        // CI-bus broadcast: wake the consumers subscribed to this entry.
        self.wakeup_broadcast(seq);
        IssueOutcome::Issued
    }
}
