//! The staged cycle-level out-of-order pipeline.
//!
//! Trace-driven: a stream of [`DynOp`]s (the committed path, produced by
//! the functional interpreter or a synthetic generator) is replayed
//! through a detailed timing model of the paper's core (Table I): a
//! width-limited front end with gshare branch prediction, register
//! renaming through a RAT, a reorder buffer, reservation stations with
//! wakeup/select scheduling, per-class functional-unit pools, a
//! load/store queue over a two-level cache hierarchy, and in-order
//! commit.
//!
//! The model is split into stage modules, each an `impl` block over the
//! shared [`state::PipelineState`]:
//!
//! - [`frontend`] — fetch, branch redirects, dispatch (rename/RAT,
//!   ROB/RSE/LSQ allocation, slack classification, tag prediction);
//! - [`issue`] — reservation-station wakeup, per-pool select
//!   arbitration, the issue attempt;
//! - [`exec`] — operand dataflow (transparent bypass, VMLA
//!   late-forwarding, store-to-load forwarding) and multi-cycle /
//!   memory / control completion timing;
//! - [`commit`] — in-order retirement, store writeback, statistics.
//!
//! Scheduling *policy* — what distinguishes baseline, ReDSOC, TS and MOS
//! — is not in these stages: each decision point delegates to the run's
//! [`Scheduler`] (see [`crate::sched`] for the
//! four implementations and the hook-by-hook contract).
//!
//! ## Sub-cycle timing model
//!
//! Absolute time is measured in CI *ticks* (`2^ci_bits` per cycle,
//! [`Quant`](redsoc_timing::Quant)). An instruction issued (selected) in
//! cycle `t` reaches its FU in cycle `t+1` and begins evaluating at
//! `max(start of t+1, availability of its sources)`. Producers broadcast
//! their tag at issue assuming single-cycle latency, so a consumer can be
//! selected at `t+1` (back to back); a producer whose transparent
//! evaluation crosses into its second cycle is caught mid-cycle by a
//! consumer arriving then — that is how slack accumulates across chains
//! without EGPW — while EGPW catches producers that complete *within*
//! their own execution cycle by issuing the consumer in the same cycle as
//! the producer.

pub mod commit;
pub mod exec;
pub mod frontend;
pub mod issue;
pub mod snapshot;
pub mod state;
pub mod wakeup;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use redsoc_isa::instruction::Instr;
use redsoc_isa::opcode::ExecClass;
use redsoc_isa::trace::DynOp;
use redsoc_timing::pvt::EPOCH_CYCLES;

use crate::config::CoreConfig;
use crate::events::{EventSink, NullSink, PipeEvent};
use crate::sched::{build_scheduler, Scheduler};
use crate::stats::{SimReport, StallCause};

use snapshot::SnapshotError;
use state::PipelineState;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline made no commit progress for an implausibly long time —
    /// a model bug, reported rather than hung.
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Instructions committed before the stall.
        committed: u64,
        /// Dump of the most recent pipeline events from the run's sink
        /// (empty when events were disabled — rerun with a retaining sink
        /// such as `RingSink` for the diagnostic).
        recent_events: Vec<String>,
    },
    /// The core configuration failed validation.
    BadConfig(String),
    /// The run was cancelled cooperatively — its [`CancelToken`] was
    /// triggered, or the token's cycle budget ran out. The partial run is
    /// discarded; this is the supervisor's watchdog path, not a model bug.
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
        /// Instructions committed before cancellation.
        committed: u64,
        /// Dump of the most recent pipeline events from the run's sink
        /// (empty when events were disabled).
        recent_events: Vec<String>,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                committed,
                recent_events,
            } => {
                write!(
                    f,
                    "no commit progress at cycle {cycle} ({committed} committed)"
                )?;
                if recent_events.is_empty() {
                    write!(
                        f,
                        "; events were disabled — rerun with --events for a pipeline dump"
                    )
                } else {
                    write!(f, "; last {} pipeline events:", recent_events.len())?;
                    for ev in recent_events {
                        write!(f, "\n  {ev}")?;
                    }
                    Ok(())
                }
            }
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Cancelled {
                cycle, committed, ..
            } => {
                write!(f, "run cancelled at cycle {cycle} ({committed} committed)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cooperative cancellation handle for a simulation run.
///
/// A token carries an optional **cycle budget** and a shared cancellation
/// flag. The simulator polls the token from its main loop (every 1024
/// cycles, so the check costs nothing measurable) and returns
/// [`SimError::Cancelled`] once either trips. Clone the token before
/// handing it to [`Simulator::with_cancel`] to keep a handle for
/// triggering cancellation from another thread (a watchdog, a signal
/// handler, a supervisor).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    budget: Option<u64>,
    /// Optional progress observer: the latest polled cycle is published
    /// here at checkpoint-poll granularity (every 1024 cycles), so an
    /// external supervisor — the process-isolation heartbeat — can see a
    /// live cycle counter without touching the hot loop.
    progress: Option<Arc<AtomicU64>>,
}

impl CancelToken {
    /// A token that never fires on its own (cancel via [`Self::cancel`]).
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that fires once the simulated cycle count reaches
    /// `max_cycles` — the job-level runaway watchdog.
    #[must_use]
    pub fn with_budget(max_cycles: u64) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            budget: Some(max_cycles),
            progress: None,
        }
    }

    /// Attach a progress observer: every cancellation poll stores the
    /// current simulated cycle into `cell`, giving supervisors a live
    /// cycle counter updated at the same 1024-cycle stride the poll
    /// itself runs at (the heartbeat source under process isolation).
    #[must_use]
    pub fn with_progress(mut self, cell: Arc<AtomicU64>) -> Self {
        self.progress = Some(cell);
        self
    }

    /// Request cancellation from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised (does not consider the budget).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The cycle budget, if one was set.
    #[must_use]
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Whether a run at `cycle` should stop. Also publishes `cycle` to
    /// the progress observer, when one is attached.
    #[must_use]
    pub fn should_stop(&self, cycle: u64) -> bool {
        if let Some(p) = &self.progress {
            p.store(cycle, Ordering::Relaxed);
        }
        self.budget.is_some_and(|b| cycle >= b) || self.is_cancelled()
    }
}

/// Periodic checkpointing for a simulation run: every `every` cycles
/// (rounded up to a multiple of the 1024-cycle poll stride, so the hot
/// loop gains no new per-cycle branch), the run captures a full
/// [`snapshot`] and hands it to `save` together with the cycle it was
/// taken at.
///
/// Checkpoint cycles are **absolute**: a run restored from cycle *C*
/// checkpoints at exactly the same cycles an uninterrupted run does, so
/// later checkpoints of the two runs are byte-identical — the property
/// the chaos harness and the equivalence tests lean on.
pub struct CheckpointPlan<'a> {
    every: u64,
    save: &'a mut dyn FnMut(u64, Vec<u8>),
}

impl<'a> CheckpointPlan<'a> {
    /// A plan that snapshots every `every_cycles` cycles (rounded up to a
    /// multiple of 1024) into `save(cycle, blob)`.
    pub fn new(every_cycles: u64, save: &'a mut dyn FnMut(u64, Vec<u8>)) -> Self {
        CheckpointPlan {
            every: every_cycles.max(1).next_multiple_of(1024),
            save,
        }
    }

    /// The effective interval after rounding.
    #[must_use]
    pub fn every(&self) -> u64 {
        self.every
    }
}

impl core::fmt::Debug for CheckpointPlan<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CheckpointPlan")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// The simulator: pipeline state plus the scheduling policy driving it.
/// Construct with [`Simulator::new`] (policy chosen by
/// `config.sched.mode`) or [`Simulator::with_scheduler`] (any
/// [`Scheduler`] implementation), feed a trace with [`Simulator::run`].
///
/// ```no_run
/// use redsoc_core::config::{CoreConfig, SchedulerConfig};
/// use redsoc_core::pipeline::Simulator;
/// use redsoc_isa::prelude::*;
///
/// # fn get_trace() -> Vec<DynOp> { vec![] }
/// let trace = get_trace();
/// let config = CoreConfig::big().with_sched(SchedulerConfig::redsoc());
/// let report = Simulator::new(config)?.run(trace.into_iter())?;
/// println!("IPC {:.2}", report.ipc());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    state: PipelineState,
    sched: Box<dyn Scheduler>,
    cancel: CancelToken,
}

impl Simulator {
    /// Build a simulator for `config`, with the scheduling policy chosen
    /// by `config.sched.mode` through the
    /// [`build_scheduler`] registry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the configuration is invalid.
    pub fn new(config: CoreConfig) -> Result<Self, SimError> {
        let sched = build_scheduler(&config.sched);
        Simulator::with_scheduler(config, sched)
    }

    /// Build a simulator for `config` driven by an explicit [`Scheduler`]
    /// implementation — the entry point for plugging in a custom
    /// scheduling design (`config.sched.mode` is ignored).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the configuration is invalid.
    pub fn with_scheduler(config: CoreConfig, sched: Box<dyn Scheduler>) -> Result<Self, SimError> {
        Ok(Simulator {
            state: PipelineState::new(config)?,
            sched,
            cancel: CancelToken::new(),
        })
    }

    /// Attach a cancellation token (builder-style). The run polls the
    /// token and returns [`SimError::Cancelled`] once it trips — the
    /// cooperative cycle-budget watchdog used by the sweep supervisor.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Differential-testing escape hatch (feature `scan-wakeup`): drive
    /// the issue stage with the legacy O(window) full scan instead of the
    /// event-driven ready sets of [`wakeup`]. Both paths must produce
    /// byte-identical results — that equivalence is what the
    /// golden-fixture property test asserts. Not part of the stable API.
    #[cfg(feature = "scan-wakeup")]
    #[doc(hidden)]
    #[must_use]
    pub fn with_scan_wakeup(mut self) -> Self {
        self.state.scan_wakeup = true;
        self
    }

    /// Serialize the complete simulator state (pipeline + scheduler) into
    /// a self-checking binary snapshot (see [`snapshot`] for the format
    /// and the completeness contract).
    ///
    /// Only meaningful at a cycle boundary — i.e. on a simulator that is
    /// not currently inside a `run` call, such as one about to start or
    /// one captured through a [`CheckpointPlan`] (which invokes the same
    /// encoder at the top of the cycle).
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        snapshot::encode(&self.state, &*self.sched)
    }

    /// Rebuild a mid-run simulator from a snapshot `blob`, rehydrating
    /// in-flight ops from `trace` (the same full trace the original run
    /// consumed, starting at seq 0). The scheduler is rebuilt from
    /// `config.sched.mode` as [`Simulator::new`] does.
    ///
    /// Returns the simulator and the **trace cursor**: resume the run by
    /// feeding `trace[cursor..]` to [`Simulator::run`] /
    /// [`Simulator::run_events`]. The resumed run produces exactly the
    /// event stream, statistics and final report of the uninterrupted
    /// original.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: a torn or corrupt blob, a version or
    /// config/scheduler mismatch, or a `trace` that does not contain the
    /// ops the snapshot's window references.
    pub fn restore(
        config: CoreConfig,
        blob: &[u8],
        trace: &[DynOp],
    ) -> Result<(Self, u64), SnapshotError> {
        let sched = build_scheduler(&config.sched);
        Simulator::restore_with_scheduler(config, sched, blob, trace)
    }

    /// [`Simulator::restore`] with an explicit [`Scheduler`] — the
    /// restore-side counterpart of [`Simulator::with_scheduler`], for
    /// policies not reachable through `config.sched.mode` (e.g. the TS
    /// scheduler or external implementations). The scheduler's own
    /// [`Scheduler::restore`] hook receives the private blob captured by
    /// its [`Scheduler::snapshot`].
    ///
    /// # Errors
    ///
    /// As [`Simulator::restore`]; an invalid `config` is reported as
    /// [`SnapshotError::Corrupt`].
    pub fn restore_with_scheduler(
        config: CoreConfig,
        mut sched: Box<dyn Scheduler>,
        blob: &[u8],
        trace: &[DynOp],
    ) -> Result<(Self, u64), SnapshotError> {
        let mut state = PipelineState::new(config)
            .map_err(|e| SnapshotError::Corrupt(format!("cannot rebuild pipeline: {e}")))?;
        let cursor = snapshot::decode_into(&mut state, sched.as_mut(), blob, trace)?;
        Ok((
            Simulator {
                state,
                sched,
                cancel: CancelToken::new(),
            },
            cursor,
        ))
    }

    /// Run the trace to completion and return the report.
    ///
    /// This is the [`NullSink`] specialisation of the single generic
    /// entry point, [`Simulator::run_events`] — there is no separate
    /// event-free code path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline stops making
    /// progress (a model bug guard, not an expected outcome), or
    /// [`SimError::Cancelled`] if an attached [`CancelToken`] tripped.
    pub fn run(self, trace: impl Iterator<Item = DynOp>) -> Result<SimReport, SimError> {
        self.run_events(trace, &mut NullSink)
    }

    /// Run the trace, streaming pipeline events into `sink` — the single
    /// generic entry point every run goes through.
    ///
    /// With the default [`NullSink`] (`EventSink::ENABLED == false`) every
    /// emission site monomorphises away and the run is identical to
    /// [`Simulator::run`]. Stall attribution is always on: it feeds
    /// `SimReport::stalls` regardless of the sink.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the pipeline stops making
    /// progress; the error carries `sink.recent()` as a diagnostic.
    pub fn run_events<S: EventSink>(
        self,
        trace: impl Iterator<Item = DynOp>,
        sink: &mut S,
    ) -> Result<SimReport, SimError> {
        self.run_inner(trace, sink, None)
    }

    /// Run the trace with periodic snapshot checkpoints (see
    /// [`CheckpointPlan`]). Identical to [`Simulator::run_events`] when
    /// the plan never fires; with checkpointing off entirely, use
    /// `run_events` — the plan-less path has no checkpoint bookkeeping on
    /// the per-cycle hot path at all.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] exactly as [`Simulator::run_events`] does.
    pub fn run_events_checkpointed<S: EventSink>(
        self,
        trace: impl Iterator<Item = DynOp>,
        sink: &mut S,
        plan: CheckpointPlan<'_>,
    ) -> Result<SimReport, SimError> {
        self.run_inner(trace, sink, Some(plan))
    }

    fn run_inner<S: EventSink>(
        self,
        mut trace: impl Iterator<Item = DynOp>,
        sink: &mut S,
        mut checkpoint: Option<CheckpointPlan<'_>>,
    ) -> Result<SimReport, SimError> {
        let Simulator {
            mut state,
            sched,
            cancel,
        } = self;
        let sched = &*sched;
        // A restored simulator resumes mid-run: progress tracking starts
        // from the restored position (equals 0/0 for a fresh run).
        let mut last_progress_cycle = state.cycle;
        let mut last_committed = state.committed_total;
        // Checkpoints fire only strictly after the entry cycle, so a
        // freshly restored run does not immediately re-save the
        // checkpoint it came from.
        let entry_cycle = state.cycle;
        loop {
            // Cooperative cancellation and checkpointing: polled every
            // 1024 cycles so the hot loop stays branch-predictable and
            // watchdog budgets are still observed within a rounding error
            // of their value.
            if state.cycle & 0x3FF == 0 {
                if cancel.should_stop(state.cycle) {
                    return Err(SimError::Cancelled {
                        cycle: state.cycle,
                        committed: state.committed_total,
                        recent_events: sink.recent(),
                    });
                }
                // Capture happens at the top of the cycle, before any of
                // the cycle's stages (including an epoch recalibration
                // that may land on the same cycle) — the restored run
                // re-executes the cycle from the same point.
                if let Some(plan) = checkpoint.as_mut() {
                    if state.cycle > entry_cycle && state.cycle.is_multiple_of(plan.every) {
                        (plan.save)(state.cycle, snapshot::encode(&state, sched));
                    }
                }
            }
            // CPM-driven LUT recalibration at epoch boundaries (§V).
            if state.config.sched.pvt_guard_band && state.cycle.is_multiple_of(EPOCH_CYCLES) {
                let gb = state.pvt.guard_band_ps(state.cycle);
                state.lut = state.base_lut.with_guard_band(gb);
            }
            let committed_before = state.committed_total;
            state.commit(sched, sink);
            let fu_denied = state.select_and_issue(sched, sink);
            let dispatch_block = state.dispatch(sched, sink);
            state.fetch(&mut trace, sink);

            if state.committed_total != last_committed {
                last_committed = state.committed_total;
                last_progress_cycle = state.cycle;
            } else if state.cycle - last_progress_cycle > state.config.deadlock_cycles {
                return Err(SimError::Deadlock {
                    cycle: state.cycle,
                    committed: state.committed_total,
                    recent_events: sink.recent(),
                });
            }

            let drained = state.fetch_stopped
                && state.fetchq.is_empty()
                && state.committed_total == state.dispatched_total;
            if drained {
                break;
            }
            // Charge this cycle to exactly one cause: the partition
            // invariant `stalls.total() == cycles` holds by construction.
            let cause = state.attribute_stall(
                state.committed_total - committed_before,
                fu_denied,
                dispatch_block,
            );
            state.report.stalls.bump(cause);
            if S::ENABLED && cause != StallCause::Busy {
                sink.record(state.cycle, &PipeEvent::StallCycle { cause });
            }
            state.cycle += 1;
        }
        if state.cycle == 0 {
            // Empty trace: the report counts one cycle; charge it too.
            state.report.stalls.bump(StallCause::Frontend);
        }
        state.drain_chain_stats();
        state.report.cycles = state.cycle.max(1);
        state.report.committed = state.committed_total;
        state.report.tag_pred = state.tag_pred.stats();
        state.report.width_pred = state.width_pred.stats();
        state.report.branch = state.gshare.stats();
        state.report.memory = state.memory.stats();
        state.report.mem_contention = state.memory.contention();
        debug_assert_eq!(state.report.stalls.total(), state.report.cycles);
        Ok(state.report)
    }
}

impl PipelineState {
    /// Pick the single cause this non-draining cycle is charged to.
    ///
    /// Priority: a retiring cycle is busy; otherwise the ROB head explains
    /// the stall (it is the oldest instruction, so nothing younger can be
    /// the bottleneck): an issued head is waiting on the memory hierarchy,
    /// a boundary-crossing slack hold, or plain execution latency; an
    /// unissued head was denied a functional unit, blocked behind a store,
    /// or is waiting on dispatch back-pressure. An empty ROB is the front
    /// end's fault.
    fn attribute_stall(
        &self,
        committed_delta: u64,
        fu_denied: bool,
        dispatch_block: Option<StallCause>,
    ) -> StallCause {
        if committed_delta > 0 {
            return StallCause::Busy;
        }
        let head_idx = (self.committed_total - self.base_seq) as usize;
        match self.ifos.get(head_idx) {
            Some(head) if head.issued => {
                if matches!(head.class, ExecClass::Load | ExecClass::Store) {
                    StallCause::Memory
                } else if head.held_two {
                    StallCause::SlackHold
                } else {
                    StallCause::ExecLatency
                }
            }
            Some(head) => {
                if head.mem_rejected {
                    // The oldest instruction is a load parked on a full
                    // MSHR file — a structural memory-model stall, not FU
                    // contention.
                    StallCause::Mshr
                } else if fu_denied {
                    StallCause::FuContention
                } else if matches!(head.op.instr, Instr::Load { .. }) && self.load_blocked(head) {
                    StallCause::Memory
                } else if let Some(cause) = dispatch_block {
                    cause
                } else {
                    StallCause::Frontend
                }
            }
            None => dispatch_block.unwrap_or(StallCause::Frontend),
        }
    }
}

/// Convenience: simulate `trace` on `config` (the [`NullSink`]
/// specialisation of [`simulate_events`] — the single generic path).
///
/// # Errors
///
/// Propagates [`SimError`] from construction or the run.
pub fn simulate(
    trace: impl Iterator<Item = DynOp>,
    config: CoreConfig,
) -> Result<SimReport, SimError> {
    simulate_events(trace, config, &mut NullSink)
}

/// Convenience: simulate `trace` on `config`, streaming pipeline events
/// into `sink` (see [`Simulator::run_events`]).
///
/// # Errors
///
/// Propagates [`SimError`] from construction or the run.
pub fn simulate_events<S: EventSink>(
    trace: impl Iterator<Item = DynOp>,
    config: CoreConfig,
    sink: &mut S,
) -> Result<SimReport, SimError> {
    Simulator::new(config)?.run_events(trace, sink)
}

#[cfg(test)]
mod tests;
