//! Functional-unit pools.
//!
//! Table I gives per-core ALU / SIMD / FP unit counts; loads and stores use
//! dedicated address-generation ports. Each unit tracks the cycle until
//! which it is busy. Single-cycle operations normally occupy a unit for one
//! execution cycle; a transparent operation whose evaluation crosses a
//! clock boundary holds its unit for **two** cycles (the paper's IT3),
//! which is the FU-pressure cost Fig. 14 measures.

use redsoc_isa::opcode::ExecClass;

/// The four scheduling pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Integer ALUs (also branches, multiplies and divides).
    Alu,
    /// SIMD units.
    Simd,
    /// FP units.
    Fp,
    /// Load/store address-generation ports.
    Mem,
}

impl PoolKind {
    /// Which pool an execution class issues to.
    #[must_use]
    pub fn for_class(class: ExecClass) -> Self {
        match class {
            ExecClass::IntAlu | ExecClass::IntMul | ExecClass::IntDiv | ExecClass::Branch => {
                PoolKind::Alu
            }
            ExecClass::SimdAlu | ExecClass::SimdMul => PoolKind::Simd,
            ExecClass::Fp => PoolKind::Fp,
            ExecClass::Load | ExecClass::Store => PoolKind::Mem,
        }
    }

    /// Stable machine-readable label (event payloads, trace track names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PoolKind::Alu => "alu",
            PoolKind::Simd => "simd",
            PoolKind::Fp => "fp",
            PoolKind::Mem => "mem",
        }
    }
}

/// One pool of identical functional units.
#[derive(Debug, Clone)]
pub struct FuPool {
    /// Per-unit first free execution cycle.
    free_at: Vec<u64>,
}

impl FuPool {
    /// A pool of `units` units, all initially free.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    #[must_use]
    pub fn new(units: u32) -> Self {
        assert!(units > 0, "a pool needs at least one unit");
        FuPool {
            free_at: vec![0; units as usize],
        }
    }

    /// Number of units free to start executing at `exec_cycle`.
    #[must_use]
    pub fn free_units(&self, exec_cycle: u64) -> u32 {
        self.free_at.iter().filter(|&&f| f <= exec_cycle).count() as u32
    }

    /// Reserve one unit for `occupancy` execution cycles starting at
    /// `exec_cycle`. Returns the index of the unit bound (the event-trace
    /// track id), or `None` (reserving nothing) if no unit is free.
    pub fn reserve(&mut self, exec_cycle: u64, occupancy: u32) -> Option<u32> {
        debug_assert!(occupancy >= 1);
        if let Some((i, f)) = self
            .free_at
            .iter_mut()
            .enumerate()
            .find(|(_, f)| **f <= exec_cycle)
        {
            *f = exec_cycle + u64::from(occupancy);
            Some(i as u32)
        } else {
            None
        }
    }

    /// Total units in the pool.
    #[must_use]
    pub fn units(&self) -> u32 {
        self.free_at.len() as u32
    }

    /// Per-unit busy-until cycles, for snapshotting.
    pub(crate) fn export_state(&self) -> &[u64] {
        &self.free_at
    }

    /// Restore per-unit busy-until cycles captured by `export_state`.
    /// Fails if the unit count differs from this pool's configuration.
    pub(crate) fn import_state(&mut self, free_at: &[u64]) -> Result<(), String> {
        if free_at.len() != self.free_at.len() {
            return Err(format!(
                "FU pool mismatch: snapshot has {} units, pool holds {}",
                free_at.len(),
                self.free_at.len()
            ));
        }
        self.free_at.copy_from_slice(free_at);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn class_to_pool_mapping() {
        assert_eq!(PoolKind::for_class(ExecClass::IntAlu), PoolKind::Alu);
        assert_eq!(PoolKind::for_class(ExecClass::Branch), PoolKind::Alu);
        assert_eq!(PoolKind::for_class(ExecClass::IntDiv), PoolKind::Alu);
        assert_eq!(PoolKind::for_class(ExecClass::SimdAlu), PoolKind::Simd);
        assert_eq!(PoolKind::for_class(ExecClass::SimdMul), PoolKind::Simd);
        assert_eq!(PoolKind::for_class(ExecClass::Fp), PoolKind::Fp);
        assert_eq!(PoolKind::for_class(ExecClass::Load), PoolKind::Mem);
        assert_eq!(PoolKind::for_class(ExecClass::Store), PoolKind::Mem);
    }

    #[test]
    fn reserve_and_release() {
        let mut p = FuPool::new(2);
        assert_eq!(p.free_units(5), 2);
        assert_eq!(p.reserve(5, 1), Some(0));
        assert_eq!(p.free_units(5), 1);
        assert_eq!(p.reserve(5, 2), Some(1)); // two-cycle transparent hold
        assert_eq!(p.free_units(5), 0);
        assert_eq!(p.reserve(5, 1), None);
        // Cycle 6: the 1-cycle reservation expired, the 2-cycle one has not.
        assert_eq!(p.free_units(6), 1);
        assert_eq!(p.free_units(7), 2);
    }

    #[test]
    fn divide_occupies_for_full_latency() {
        let mut p = FuPool::new(1);
        assert!(p.reserve(10, 12).is_some());
        for c in 10..22 {
            assert_eq!(p.free_units(c), 0, "cycle {c}");
        }
        assert_eq!(p.free_units(22), 1);
    }

    #[test]
    fn pool_labels_are_stable() {
        assert_eq!(PoolKind::Alu.label(), "alu");
        assert_eq!(PoolKind::Simd.label(), "simd");
        assert_eq!(PoolKind::Fp.label(), "fp");
        assert_eq!(PoolKind::Mem.label(), "mem");
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_pool_rejected() {
        let _ = FuPool::new(0);
    }
}
