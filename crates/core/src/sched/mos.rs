//! The MOS operation-fusion comparator (§VI-D).

use crate::pipeline::state::PipelineState;

use super::{FusedIssue, Scheduler};

/// MOS — "Multiple Operations in Single-cycle": conventional wakeup,
/// select and boundary completion (all trait defaults), plus a
/// [`post_issue`](Scheduler::post_issue) pass that greedily packs
/// dependent single-cycle ops into the producer's execution cycle while
/// their summed compute times fit within one clock period.
#[derive(Debug, Clone, Copy, Default)]
pub struct MosScheduler;

impl Scheduler for MosScheduler {
    fn name(&self) -> &'static str {
        "mos"
    }

    fn post_issue(&self, state: &mut PipelineState, producer: u64, t: u64) -> Vec<FusedIssue> {
        if !state.ifo(producer).is_some_and(|x| x.recyclable) {
            return Vec::new();
        }
        let q = state.quant();
        let tpc = q.ticks_per_cycle();
        let mut fused = Vec::new();
        let mut head = producer;
        let mut budget = state.ifo(head).expect("producer").ext_ticks;
        loop {
            let head_pool = state.ifo(head).expect("chain head").pool;
            // Find the oldest waiting recyclable consumer of `head` whose
            // other operands are already at the FU boundary.
            let candidate = state
                .ifos
                .iter()
                .filter(|y| {
                    !y.issued
                        && !y.committed
                        && y.recyclable
                        && y.pool == head_pool
                        && y.earliest_req <= t + 1
                        && y.srcs.contains(&head)
                        && budget + y.ext_ticks <= tpc
                        && y.srcs.iter().all(|&s| {
                            s == head || state.src_sel_ready(s, y).is_some_and(|r| r <= t)
                        })
                })
                .min_by_key(|y| y.op.seq)
                .map(|y| y.op.seq);
            let Some(ynum) = candidate else { break };
            let start_offset = budget; // fused op starts after the chain so far
            budget += state.ifo(ynum).expect("candidate").ext_ticks;
            // The fused op rides the producer's FU and completes at the
            // same boundary.
            {
                let ym = state.ifo_mut(ynum).expect("candidate");
                ym.issued = true;
                ym.issue_cycle = t;
                ym.sel_ready = t + 1;
                ym.avail = q.cycle_start(t + 2);
                ym.done_cycle = t + 2;
                ym.transparent = false;
            }
            state.rse_used -= 1;
            state.report.recycled_ops += 1; // fused ops saved a cycle
            fused.push(FusedIssue {
                seq: ynum,
                start_offset,
            });
            head = ynum;
        }
        fused
    }
}
