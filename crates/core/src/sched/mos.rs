//! The MOS operation-fusion comparator (§VI-D).

// Invariant `expect`s in this module are deliberate: each one guards a
// structural pipeline invariant that only a simulator bug can violate
// (never operator input), and a loud abort — isolated and quarantined
// per job by the bench supervisor — beats silently corrupting a
// result. The per-cycle hot path stays `Result`-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::pipeline::state::{Ifo, PipelineState};

use super::{FusedIssue, Scheduler};

/// MOS — "Multiple Operations in Single-cycle": conventional wakeup,
/// select and boundary completion (all trait defaults), plus a
/// [`post_issue`](Scheduler::post_issue) pass that greedily packs
/// dependent single-cycle ops into the producer's execution cycle while
/// their summed compute times fit within one clock period.
///
/// Wakeup purity audit: no `wakeup` override — inherits the default
/// all-operands wakeup (audited in [`baseline`](super::baseline)). The
/// fusion pass runs in `post_issue`, outside the wakeup contract; fused
/// consumers are marked issued immediately, so they can never appear in a
/// later ready set. Contract satisfied.
///
/// Snapshot audit: a unit struct with no fields — fusion decisions are
/// recomputed each cycle from the in-flight window, which the pipeline
/// snapshot serializes; the default empty [`Scheduler::snapshot`] blob is
/// complete. Contract satisfied.
#[derive(Debug, Clone, Copy, Default)]
pub struct MosScheduler;

impl Scheduler for MosScheduler {
    fn name(&self) -> &'static str {
        "mos"
    }

    fn post_issue(&self, state: &mut PipelineState, producer: u64, t: u64) -> Vec<FusedIssue> {
        if !state.ifo(producer).is_some_and(|x| x.recyclable) {
            return Vec::new();
        }
        let q = state.quant();
        let tpc = q.ticks_per_cycle();
        let mut fused = Vec::new();
        let mut head = producer;
        let mut budget = state.ifo(head).expect("producer").ext_ticks;
        // Fusion candidate filter: a waiting recyclable consumer of `head`
        // whose other operands are already at the FU boundary and whose
        // compute time still fits the shared clock period.
        let fusable = |state: &PipelineState, y: &Ifo, head: u64, head_pool, budget: u64| {
            !y.issued
                && !y.committed
                && y.recyclable
                && y.pool == head_pool
                && y.earliest_req <= t + 1
                && y.srcs.contains(&head)
                && budget + y.ext_ticks <= tpc
                && y.srcs
                    .iter()
                    .all(|&s| s == head || state.src_sel_ready(s, y).is_some_and(|r| r <= t))
        };
        loop {
            let head_pool = state.ifo(head).expect("chain head").pool;
            // Event-driven mode: every in-window consumer of `head`
            // subscribed to its issue broadcast at dispatch (and the
            // pipeline defers `head`'s broadcast until after this hook),
            // so the waiter list indexes exactly the entries that can
            // satisfy `y.srcs.contains(&head)` — walk it instead of the
            // window. Extra waiters (grandparent-only subscribers, issued
            // or retired entries) fail the same filter the scan applies.
            let candidate = if state.scan_mode() {
                state
                    .ifos
                    .iter()
                    .filter(|y| fusable(state, y, head, head_pool, budget))
                    .min_by_key(|y| y.op.seq)
                    .map(|y| y.op.seq)
            } else {
                state
                    .ifo(head)
                    .expect("chain head")
                    .waiters
                    .iter()
                    .filter_map(|&w| state.ifo(w))
                    .filter(|y| fusable(state, y, head, head_pool, budget))
                    .min_by_key(|y| y.op.seq)
                    .map(|y| y.op.seq)
            };
            let Some(ynum) = candidate else { break };
            let start_offset = budget; // fused op starts after the chain so far
            budget += state.ifo(ynum).expect("candidate").ext_ticks;
            // The fused op rides the producer's FU and completes at the
            // same boundary.
            {
                let ym = state.ifo_mut(ynum).expect("candidate");
                ym.issued = true;
                ym.issue_cycle = t;
                ym.sel_ready = t + 1;
                ym.avail = q.cycle_start(t + 2);
                ym.done_cycle = t + 2;
                ym.transparent = false;
            }
            state.rse_used -= 1;
            state.report.recycled_ops += 1; // fused ops saved a cycle
            fused.push(FusedIssue {
                seq: ynum,
                start_offset,
            });
            head = ynum;
        }
        fused
    }
}
