//! The ReDSOC slack-recycling scheduler (§III–IV).

// Invariant `expect`s in this module are deliberate: each one guards a
// structural pipeline invariant that only a simulator bug can violate
// (never operator input), and a loud abort — isolated and quarantined
// per job by the bench supervisor — beats silently corrupting a
// result. The per-cycle hot path stays `Result`-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use redsoc_isa::opcode::ExecClass;
use redsoc_timing::slack::{SlackBucket, WidthClass};
use redsoc_timing::width_predictor::WidthOutcome;

use crate::config::SchedulerConfig;
use crate::pipeline::state::{Ifo, PipelineState};

use super::{ExecTiming, IssueArgs, Scheduler, SelectRequest};

/// Slack-aware scheduling over a transparent-flip-flop bypass network:
///
/// - **wakeup** on the predicted-last-arriving tag only (operational RSE
///   design, §IV-C), with eager grandparent wakeup (§IV-B) raising
///   speculative requests one dependence level ahead;
/// - **skewed select** (§IV-D) servicing non-speculative requests first,
///   so GP-mispeculation recovery is unreachable by construction;
/// - **transparent bypass** between same-pool recyclable ops: a consumer
///   begins evaluating at its producer's raw Completion Instant instead of
///   the next clock boundary;
/// - **thresholded recycling decision** for speculative grants — the
///   parent's CI must fall within `threshold_ticks` of the cycle start;
/// - **CI-resolution completion timing** with width-prediction validation
///   at execute and two-cycle FU holds for boundary-crossing evaluations.
///
/// Snapshot audit: every field is captured once in `from_config` and
/// never mutated afterwards (`invert_select` additionally reads the
/// `REDSOC_TEST_INVERT_SKEW` environment variable, which a resuming
/// process re-reads identically); the predictor tables the policy
/// consults live in `PipelineState` and are serialized there. The
/// default empty [`Scheduler::snapshot`] blob is complete. Contract
/// satisfied.
#[derive(Debug, Clone, Copy)]
pub struct RedsocScheduler {
    egpw: bool,
    skewed: bool,
    threshold_ticks: u64,
    width_replay_penalty: u32,
    invert_select: bool,
}

impl RedsocScheduler {
    /// Capture the ReDSOC policy knobs from a scheduler configuration.
    ///
    /// Setting the `REDSOC_TEST_INVERT_SKEW=1` environment variable plants
    /// the [`Self::with_inverted_skew`] fault here, so the differential
    /// fuzzing harness can demonstrate end-to-end bug detection against
    /// the released binary without a special build.
    #[must_use]
    pub fn from_config(config: &SchedulerConfig) -> Self {
        let invert = std::env::var_os("REDSOC_TEST_INVERT_SKEW").is_some_and(|v| v == "1");
        RedsocScheduler {
            egpw: config.egpw,
            skewed: config.skewed_select,
            threshold_ticks: config.threshold_ticks,
            width_replay_penalty: config.width_replay_penalty,
            invert_select: invert,
        }
    }

    /// Test-only fault injection: invert the skewed-selection priority so
    /// grandparent-speculative requests are serviced *ahead of*
    /// non-speculative ones — exactly the ordering bug §IV-D's skew
    /// exists to prevent. The scheduler also stops advertising
    /// [`Scheduler::skewed_select`], since the guarantee no longer holds;
    /// GP-mispeculation recovery becomes reachable and the verification
    /// oracle must flag the run. Not part of the public API.
    #[doc(hidden)]
    #[must_use]
    pub fn with_inverted_skew(mut self) -> Self {
        self.invert_select = true;
        self
    }
}

impl Scheduler for RedsocScheduler {
    fn name(&self) -> &'static str {
        "redsoc"
    }

    fn uses_tag_prediction(&self, recyclable: bool) -> bool {
        recyclable
    }

    // Purity audit: reads only `x`'s rename-time fields (`recyclable`,
    // `fallback`, `pred_last`, `gp_tag`, `srcs`) and `src_sel_ready` over
    // srcs ∪ gp_tag at the current cycle. `src_sel_ready` thresholds are
    // fixed once a producer issues, so the result is monotone in the
    // cycle; the issue broadcast of any tag in srcs ∪ gp_tag is exactly
    // the event set the pipeline subscribes to. Contract satisfied.
    fn wakeup(&self, state: &PipelineState, x: &Ifo) -> Option<SelectRequest> {
        let cycle = state.cycle();
        let ready = |t: u64| state.src_sel_ready(t, x).is_some_and(|r| r <= cycle);
        let use_pred = x.recyclable && !x.fallback;
        let nonspec = if use_pred {
            // Operational RSE: wait only for the predicted-last tag.
            match x.pred_last {
                None => true,
                Some(t) => ready(t),
            }
        } else {
            x.srcs.iter().all(|&t| ready(t))
        };
        if nonspec {
            return Some(SelectRequest {
                seq: x.op.seq,
                spec: false,
            });
        }
        // Eager grandparent wakeup (§IV-B): speculative request once the
        // grandparent has broadcast, hoping the parent issues this cycle.
        if self.egpw && x.recyclable {
            if let Some(gp) = x.gp_tag {
                if ready(gp) {
                    return Some(SelectRequest {
                        seq: x.op.seq,
                        spec: true,
                    });
                }
            }
        }
        None
    }

    fn select(&self, requests: &mut [SelectRequest]) {
        // Skewed selection (§IV-D): non-speculative requests first,
        // oldest-first within each group. Unskewed: purely oldest-first
        // (the original GPW behaviour, exposing GP-mispeculation).
        // Every key includes the unique `seq`, so an unstable sort is
        // deterministic and avoids the stable sort's scratch allocation.
        if self.invert_select {
            // Injected fault: speculative-first, the ordering skew forbids.
            requests.sort_unstable_by_key(|r| (core::cmp::Reverse(r.spec), r.seq));
        } else if self.skewed {
            requests.sort_unstable_by_key(|r| (r.spec, r.seq));
        } else {
            requests.sort_unstable_by_key(|r| r.seq);
        }
    }

    fn skewed_select(&self) -> bool {
        // The inverted-skew fault breaks the no-overtake guarantee, so the
        // pipeline must not be told it holds (GP-mispeculation recovery
        // has to stay armed for the run to remain well-defined).
        self.skewed && !self.invert_select
    }

    fn transparent_pair(&self, producer: &Ifo, consumer: &Ifo) -> bool {
        consumer.recyclable && producer.recyclable && producer.pool == consumer.pool
    }

    fn spec_grant_usable(&self, state: &PipelineState, x: &Ifo, parent: &Ifo, t: u64) -> bool {
        let q = state.quant();
        // The recycling decision (§IV-D): the parent must complete within
        // its own execution cycle, leaving at most `threshold_ticks` of
        // consumed time — and a non-zero CI, else nothing is recycled.
        let recycle_ok = parent.recyclable
            && parent.pool == x.pool
            && parent.avail < q.cycle_start(t + 2)
            && q.ci_of(parent.avail) <= self.threshold_ticks
            && q.ci_of(parent.avail) != 0;
        // All other operands must be ready in time as well.
        let others_ok = x
            .srcs
            .iter()
            .all(|&s| s == parent.op.seq || state.src_sel_ready(s, x).is_some_and(|r| r <= t));
        recycle_ok && others_ok
    }

    fn on_issue(&self, state: &mut PipelineState, issue: &IssueArgs) -> ExecTiming {
        let q = state.quant();
        let t = issue.cycle;
        let tpc = q.ticks_per_cycle();
        // Width-prediction validation at execute (§II-B).
        let mut ext = issue.ext_ticks;
        let mut replay = 0u64;
        if issue.class == ExecClass::IntAlu {
            let actual = WidthClass::from_bits(issue.op.eff_bits);
            let outcome = state
                .width_pred
                .update(issue.op.pc, issue.pred_width, actual);
            if outcome == WidthOutcome::Aggressive {
                // Selective reissue: full-width re-execution.
                let bucket = SlackBucket::classify(&issue.op.instr, WidthClass::W32)
                    .expect("ALU classifies");
                ext = q.ps_to_ticks_ceil(state.lut.compute_ps(bucket));
                replay = u64::from(self.width_replay_penalty) * tpc;
            }
        }
        let completion = issue.start + ext + replay;
        let crossing = completion > q.cycle_start(t + 2);
        // A reissued (width-mispredicted) op frees its unit and
        // re-executes later, so occupancy stays at most the two-cycle
        // transparent hold.
        let occ = ((q.ceil_to_cycle(completion).max(q.cycle_start(t + 2)) - q.cycle_start(t + 1))
            / tpc)
            .min(2);
        if crossing {
            state.report.two_cycle_holds += 1;
        }
        ExecTiming {
            sel_ready: t + 1,
            avail: completion,
            done_cycle: q.cycle_of(q.ceil_to_cycle(completion)).max(t + 2),
            occupancy: occ as u32,
            held_two: crossing,
        }
    }
}
