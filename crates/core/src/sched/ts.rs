//! Timing-speculation comparator (the paper's "TS", §VI-D).
//!
//! A Razor-style design raises frequency until the rate of timing
//! violations (single-cycle computations whose true delay exceeds the
//! shortened clock) reaches a tolerable bound. Because frequency can only
//! be set at coarse temporal granularity while data slack varies per
//! operation, TS must be configured for the *tail* of the delay
//! distribution — the fundamental limitation ReDSOC sidesteps.
//!
//! Following the paper, the frequency is **statically fixed per
//! application** so the measured error rate stays within 0.01–1%, and
//! error recovery is *not* modelled (TS numbers are optimistic).
//!
//! Under a shortened clock, single-cycle ALU work still takes one (shorter)
//! cycle, but fixed-time structures slow down in cycle terms: DRAM/cache
//! latencies and multi-cycle functional units are rescaled by the clock
//! ratio. Speedup is reported in wall-clock time.

use redsoc_isa::instruction::Instr;
use redsoc_isa::trace::DynOp;
use redsoc_timing::optime::{alu_compute_ps, simd_compute_ps, CYCLE_PS};

use crate::config::{CoreConfig, SchedulerConfig};
use crate::pipeline::{SimError, Simulator};

use super::Scheduler;

/// The TS scheduling policy: *conventional* wakeup, select and boundary
/// completion — identical to the baseline — because timing speculation
/// changes the clock, not the scheduler. All slack exploitation happens
/// statically in [`run_ts`]: the clock is shortened per application and
/// fixed-time structures are rescaled, then this scheduler drives the
/// pipeline exactly as the baseline would.
///
/// Wakeup purity audit: no `wakeup` override — inherits the default
/// all-operands wakeup, whose purity is audited in
/// [`baseline`](super::baseline). Contract satisfied.
///
/// Snapshot audit: a unit struct with no fields. The TS-specific state
/// (rescaled memory latencies, chosen clock) lives entirely in the
/// `CoreConfig` the run was built with, which the snapshot's config
/// digest covers; the default empty [`Scheduler::snapshot`] blob is
/// complete. Contract satisfied.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsScheduler;

impl Scheduler for TsScheduler {
    fn name(&self) -> &'static str {
        "ts"
    }
}

/// Result of a timing-speculation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TsResult {
    /// The shortened clock period chosen (ps).
    pub clock_ps: u32,
    /// Fraction of single-cycle computations that would violate timing at
    /// that period.
    pub error_rate: f64,
    /// Wall-clock speedup over the unscaled baseline.
    pub speedup: f64,
    /// Cycles of the scaled run.
    pub cycles: u64,
}

/// True compute time (ps) of a single-cycle operation, or `None` for
/// multi-cycle / memory / control operations.
#[must_use]
pub fn op_compute_ps(op: &DynOp) -> Option<u32> {
    match op.instr {
        Instr::Alu { op: alu, .. } => {
            Some(alu_compute_ps(alu, op.instr.uses_shifter(), op.eff_bits))
        }
        Instr::Simd { op: simd, ty, .. } if simd.is_single_cycle() => {
            Some(simd_compute_ps(simd, ty))
        }
        _ => None,
    }
}

/// Fraction of single-cycle computations in `trace` whose true delay
/// exceeds `clock_ps`.
#[must_use]
pub fn error_rate_at(trace: &[DynOp], clock_ps: u32) -> f64 {
    let mut total = 0u64;
    let mut errors = 0u64;
    for op in trace {
        if let Some(t) = op_compute_ps(op) {
            total += 1;
            if t > clock_ps {
                errors += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        errors as f64 / total as f64
    }
}

/// Choose the shortest clock period (from `CYCLE_PS` down to
/// `min_clock_ps` in `step_ps` decrements) whose error rate stays at or
/// below `max_error`.
#[must_use]
pub fn choose_clock(trace: &[DynOp], max_error: f64, min_clock_ps: u32, step_ps: u32) -> u32 {
    let mut best = CYCLE_PS;
    let mut clock = CYCLE_PS;
    while clock >= min_clock_ps {
        if error_rate_at(trace, clock) <= max_error {
            best = clock;
        } else {
            break; // error rate is monotone in clock period
        }
        if clock < step_ps {
            break;
        }
        clock -= step_ps;
    }
    best
}

/// Clock floor for timing speculation (ps): frequency scaling stresses
/// *every* synchronous stage — fetch, scheduler, cache arrays — not just
/// the ALU data paths whose error rate is being tracked. Those stages are
/// synthesised right up to the clock with only a small guard band, so a
/// Razor-style design can reclaim roughly 10% of the period before
/// non-datapath stages start failing uncontrollably. (This is why the
/// paper's TS bars stay in single digits while ReDSOC, which touches only
/// the ALU bypass network, is unconstrained.)
pub const TS_MIN_CLOCK_PS: u32 = 450;

/// Run the TS comparator: pick the per-application clock, rescale
/// fixed-time latencies, simulate under a [`TsScheduler`], and report
/// wall-clock speedup against the given baseline cycle count.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_ts(
    trace: &[DynOp],
    config: &CoreConfig,
    baseline_cycles: u64,
    max_error: f64,
) -> Result<TsResult, SimError> {
    let clock_ps = choose_clock(trace, max_error, TS_MIN_CLOCK_PS, 10);
    let error_rate = error_rate_at(trace, clock_ps);

    // Rescale fixed-time structures to the shorter clock.
    let scale = f64::from(CYCLE_PS) / f64::from(clock_ps);
    let mut ts_config = config.clone().with_sched(SchedulerConfig::baseline());
    let rescale = |cycles: u32| -> u32 { (f64::from(cycles) * scale).ceil() as u32 };
    ts_config.mem_latencies.l1_cycles = rescale(ts_config.mem_latencies.l1_cycles);
    ts_config.mem_latencies.l2_cycles = rescale(ts_config.mem_latencies.l2_cycles);
    ts_config.mem_latencies.mem_cycles = rescale(ts_config.mem_latencies.mem_cycles);

    let report =
        Simulator::with_scheduler(ts_config, Box::new(TsScheduler))?.run(trace.iter().copied())?;
    let base_time = baseline_cycles as f64 * f64::from(CYCLE_PS);
    let ts_time = report.cycles as f64 * f64::from(clock_ps);
    Ok(TsResult {
        clock_ps,
        error_rate,
        speedup: base_time / ts_time,
        cycles: report.cycles,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::pipeline::simulate;
    use redsoc_isa::opcode::AluOp;
    use redsoc_isa::operand::Operand2;
    use redsoc_isa::program::r;

    fn mixed_trace(n: u64, critical_every: u64) -> Vec<DynOp> {
        // Mostly logic ops, with an occasional critical shifted add.
        let mut ops = Vec::new();
        for i in 0..n {
            let instr = if critical_every > 0 && i % critical_every == 0 {
                Instr::Alu {
                    op: AluOp::Add,
                    dst: Some(r(1)),
                    src1: Some(r(1)),
                    op2: Operand2::shifted(r(2), redsoc_isa::operand::ShiftKind::Lsr, 3),
                    set_flags: false,
                }
            } else {
                Instr::Alu {
                    op: AluOp::Eor,
                    dst: Some(r(1)),
                    src1: Some(r(1)),
                    op2: Operand2::Imm(1),
                    set_flags: false,
                }
            };
            let mut d = DynOp::simple(i, (i % 32) as u32 * 4, instr);
            d.eff_bits = 32;
            ops.push(d);
        }
        ops.push(DynOp::simple(n, 0, Instr::Halt));
        ops
    }

    #[test]
    fn error_rate_monotone_in_clock() {
        let t = mixed_trace(1000, 100);
        let e500 = error_rate_at(&t, 500);
        let e400 = error_rate_at(&t, 400);
        let e200 = error_rate_at(&t, 200);
        assert!(e500 <= e400 && e400 <= e200);
        assert_eq!(e500, 0.0, "nothing violates the design clock");
    }

    #[test]
    fn critical_ops_pin_the_clock() {
        // 1% of ops are 500 ps critical: a 1% error bound allows scaling
        // right up to (but not past) the point those ops fail.
        let t = mixed_trace(10_000, 100);
        // The critical shifted ADD takes 480 ps; under a tight bound the
        // clock cannot shrink past it.
        let clock = choose_clock(&t, 0.005, 300, 10);
        assert_eq!(
            clock, 480,
            "critical tail above the bound forbids scaling past it"
        );
        let clock = choose_clock(&t, 0.02, 300, 10);
        assert!(clock < 480, "loose bound allows scaling: {clock}");
    }

    #[test]
    fn no_critical_ops_allows_deep_scaling() {
        let t = mixed_trace(5_000, 0);
        // EOR takes 160 ps: with no critical ops the clock can shrink far.
        let clock = choose_clock(&t, 0.001, 300, 10);
        assert!(clock <= 320, "logic-only stream scales deeply: {clock}");
    }

    #[test]
    fn ts_speedup_is_bounded_by_clock_ratio() {
        let t = mixed_trace(3_000, 0);
        let config = CoreConfig::big();
        let base = simulate(t.iter().copied(), config.clone()).unwrap();
        let ts = run_ts(&t, &config, base.cycles, 0.01).unwrap();
        let max = f64::from(CYCLE_PS) / f64::from(ts.clock_ps);
        assert!(
            ts.speedup > 1.0,
            "scaling must speed up compute-bound code: {}",
            ts.speedup
        );
        assert!(
            ts.speedup <= max + 1e-9,
            "{} > clock ratio {max}",
            ts.speedup
        );
        // The non-ALU stages cap scaling at the floor.
        assert!(ts.clock_ps >= TS_MIN_CLOCK_PS);
    }

    #[test]
    fn ts_scheduler_matches_baseline_exactly() {
        // TS is the conventional scheduler under a different clock: on the
        // *same* config the two must be cycle-identical.
        let t = mixed_trace(2_000, 50);
        let config = CoreConfig::big();
        let base = simulate(t.iter().copied(), config.clone()).unwrap();
        let ts = Simulator::with_scheduler(config, Box::new(TsScheduler))
            .unwrap()
            .run(t.iter().copied())
            .unwrap();
        assert_eq!(format!("{base:?}"), format!("{ts:?}"));
    }
}
