//! The conventional baseline scheduler.

use super::Scheduler;

/// Conventional out-of-order scheduling: all-operands wakeup,
/// oldest-first select, every single-cycle operation completes at a clock
/// boundary, no slack is recycled. Every [`Scheduler`] default method *is*
/// this policy, so the implementation is empty — which is exactly the
/// point: the baseline is the trait's reference semantics.
///
/// Wakeup purity audit: the default `wakeup` reads only `x.srcs` through
/// `src_sel_ready` at the current cycle — pure and monotone, exactly the
/// event set (source issue broadcasts) the pipeline subscribes to.
/// Contract satisfied.
///
/// Snapshot audit: a unit struct with no fields — nothing mutates after
/// construction, so the default empty [`Scheduler::snapshot`] blob is
/// complete. Contract satisfied.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineScheduler;

impl Scheduler for BaselineScheduler {
    fn name(&self) -> &'static str {
        "baseline"
    }
}
