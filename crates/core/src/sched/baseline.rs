//! The conventional baseline scheduler.

use super::Scheduler;

/// Conventional out-of-order scheduling: all-operands wakeup,
/// oldest-first select, every single-cycle operation completes at a clock
/// boundary, no slack is recycled. Every [`Scheduler`] default method *is*
/// this policy, so the implementation is empty — which is exactly the
/// point: the baseline is the trait's reference semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineScheduler;

impl Scheduler for BaselineScheduler {
    fn name(&self) -> &'static str {
        "baseline"
    }
}
