//! Pluggable scheduling policies for the staged pipeline.
//!
//! The issue stage of [`crate::pipeline`] is mechanism — reservation
//! stations, per-pool select arbiters, the register scoreboard, functional
//! unit reservation. Everything that makes one scheduling *design* differ
//! from another is policy, and lives behind the [`Scheduler`] trait:
//!
//! - [`baseline::BaselineScheduler`] — conventional all-operands wakeup,
//!   oldest-first select, boundary-aligned completion.
//! - [`redsoc::RedsocScheduler`] — the paper's slack-recycling design:
//!   last-arrival tag-predicted wakeup, eager grandparent wakeup,
//!   skewed selection, transparent bypass and CI-resolution completion.
//! - [`ts::TsScheduler`] — the timing-speculation comparator (§VI-D):
//!   conventional scheduling under a statically shortened clock.
//! - [`mos::MosScheduler`] — the operation-fusion comparator (§VI-D):
//!   conventional timing plus greedy same-cycle fusion of dependent
//!   single-cycle ops.
//!
//! A scheduler is a *policy object*: the hooks receive the pipeline state
//! (reservation-station window, scoreboard, quantiser, predictors) and
//! return decisions; per-instruction bookkeeping stays in the
//! [`Ifo`] entries. Registering a new design
//! means implementing the trait and handing a boxed instance to
//! [`Simulator::with_scheduler`](crate::pipeline::Simulator::with_scheduler)
//! — every default method reproduces conventional baseline behaviour, so
//! a minimal scheduler only overrides what it changes:
//!
//! ```
//! use redsoc_core::config::CoreConfig;
//! use redsoc_core::pipeline::Simulator;
//! use redsoc_core::sched::{Scheduler, SelectRequest};
//!
//! /// Selects youngest-first instead of oldest-first.
//! #[derive(Debug)]
//! struct YoungestFirst;
//!
//! impl Scheduler for YoungestFirst {
//!     fn name(&self) -> &'static str {
//!         "youngest-first"
//!     }
//!     fn select(&self, requests: &mut [SelectRequest]) {
//!         requests.sort_unstable_by_key(|r| std::cmp::Reverse(r.seq));
//!     }
//! }
//!
//! let sim = Simulator::with_scheduler(CoreConfig::big(), Box::new(YoungestFirst))?;
//! # let _ = sim;
//! # Ok::<(), redsoc_core::pipeline::SimError>(())
//! ```

pub mod baseline;
pub mod mos;
pub mod redsoc;
pub mod ts;

use core::fmt;

use redsoc_timing::Quant;

use crate::config::{SchedMode, SchedulerConfig};
use crate::pipeline::state::{Ifo, PipelineState};

/// One entry's bid for a functional unit this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectRequest {
    /// Sequence tag of the requesting reservation-station entry.
    pub seq: u64,
    /// Grandparent-speculative request (eager grandparent wakeup, §IV-B):
    /// the entry bids before its predicted-last parent has broadcast,
    /// hoping the parent issues in the same cycle.
    pub spec: bool,
}

/// Completion timing of an issued operation, as decided by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecTiming {
    /// First cycle at which consumers may be selected.
    pub sel_ready: u64,
    /// Estimated completion tick — the CI-bus broadcast value.
    pub avail: u64,
    /// Cycle at which the ROB may retire the op.
    pub done_cycle: u64,
    /// Execution cycles the functional unit stays reserved.
    pub occupancy: u32,
    /// Whether the evaluation crossed a clock boundary and holds its FU
    /// for two cycles (IT3).
    pub held_two: bool,
}

impl ExecTiming {
    /// Conventional single-cycle timing: selected at `t`, executes in
    /// `t + 1`, completes at the next clock boundary.
    #[must_use]
    pub fn boundary(quant: Quant, t: u64) -> Self {
        ExecTiming {
            sel_ready: t + 1,
            avail: quant.cycle_start(t + 2),
            done_cycle: t + 2,
            occupancy: 1,
            held_two: false,
        }
    }
}

/// The issuing op's decode-time attributes handed to
/// [`Scheduler::on_issue`] — a Copy snapshot, so the hook never needs to
/// re-borrow (or clone) the reservation-station entry it is timing.
#[derive(Debug, Clone, Copy)]
pub struct IssueArgs {
    /// The traced dynamic operation.
    pub op: redsoc_isa::trace::DynOp,
    /// Execution class resolved at decode.
    pub class: redsoc_isa::opcode::ExecClass,
    /// Quantised compute time from the slack LUT.
    pub ext_ticks: u64,
    /// Predicted operand width at decode.
    pub pred_width: redsoc_timing::slack::WidthClass,
    /// Absolute tick at which evaluation begins (latest source
    /// availability, no earlier than FU arrival).
    pub start: u64,
    /// Cycle the op was selected.
    pub cycle: u64,
}

/// An op packed into its producer's execution cycle by a fusing scheduler
/// (MOS). Returned from [`Scheduler::post_issue`] so the pipeline can emit
/// the matching issue events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedIssue {
    /// Sequence tag of the fused consumer.
    pub seq: u64,
    /// Tick offset of its evaluation start within the shared execution
    /// cycle (the summed compute time of the chain before it).
    pub start_offset: u64,
}

/// A scheduling policy plugged into the pipeline's issue stage.
///
/// Hook order per simulated cycle: [`Scheduler::wakeup`] builds the
/// select requests, [`Scheduler::select`] orders each pool's requests,
/// then per grant the issue stage consults
/// [`Scheduler::spec_grant_usable`] (speculative grants),
/// [`Scheduler::uses_tag_prediction`] (scoreboard validation),
/// [`Scheduler::on_issue`] (completion timing of single-cycle ops) and
/// [`Scheduler::post_issue`] (fusion). [`Scheduler::on_writeback`] fires
/// as each op retires. Every default reproduces the conventional
/// baseline, so implementations override only what their design changes.
pub trait Scheduler: fmt::Debug + Send + Sync {
    /// Short machine-readable policy name.
    fn name(&self) -> &'static str;

    /// Rename-time policy: should a recyclable op consume a last-arrival
    /// tag prediction (the operational RSE design, §IV-C)? When `false`,
    /// rename stores all source tags for conventional wakeup.
    fn uses_tag_prediction(&self, recyclable: bool) -> bool {
        let _ = recyclable;
        false
    }

    /// Wakeup: whether entry `x` requests selection this cycle. The
    /// pipeline has already filtered issued/committed entries, recovery
    /// holds (`earliest_req`) and blocked loads. The default is
    /// conventional wakeup: request once every source has broadcast.
    ///
    /// # Purity contract (event-driven wakeup)
    ///
    /// The issue stage evaluates this hook *lazily*: an entry sleeps until
    /// one of its wake events fires (a source's issue broadcast, or its
    /// own `earliest_req` alarm) and is only then re-polled. For that to
    /// be equivalent to polling every cycle, `wakeup` must be:
    ///
    /// 1. **Pure** in the entry's own fields, the source scoreboard
    ///    (`src_sel_ready` over `srcs` ∪ `gp_tag`) and the current cycle —
    ///    no hidden state, no side effects.
    /// 2. **Monotone** in the cycle: once it returns `Some` it keeps
    ///    returning `Some` (with possibly different `spec`) until the
    ///    entry issues or its `earliest_req` is pushed into the future by
    ///    a recovery path.
    ///
    /// If an implementation cannot satisfy the contract (it reads state
    /// the wake events don't cover), the pipeline degrades gracefully: an
    /// entry whose sources have all issued but whose `wakeup` still
    /// returns `None` is re-armed for the next cycle and polled again —
    /// never silently dropped — at per-cycle polling cost for that entry.
    /// All four in-tree schedulers satisfy the contract (audit notes in
    /// each module).
    fn wakeup(&self, state: &PipelineState, x: &Ifo) -> Option<SelectRequest> {
        let all_ready = x.srcs.iter().all(|&t| {
            state
                .src_sel_ready(t, x)
                .is_some_and(|r| r <= state.cycle())
        });
        all_ready.then_some(SelectRequest {
            seq: x.op.seq,
            spec: false,
        })
    }

    /// Select: order one pool's requests before grants are handed out in
    /// vector order. The default is oldest-first. Sequence tags are
    /// unique, so an unstable sort is deterministic and allocation-free.
    fn select(&self, requests: &mut [SelectRequest]) {
        requests.sort_unstable_by_key(|r| r.seq);
    }

    /// Whether skewed arbitration is active: non-speculative requests are
    /// always serviced before speculative ones, so a child can never race
    /// ahead of its parent and GP-mispeculation recovery is unreachable.
    /// Must agree with the ordering [`Scheduler::select`] imposes.
    fn skewed_select(&self) -> bool {
        false
    }

    /// Bypass policy: may `consumer` observe `producer`'s raw Completion
    /// Instant through the transparent bypass network (sub-cycle operand
    /// hand-off), rather than waiting for the next clock boundary?
    fn transparent_pair(&self, producer: &Ifo, consumer: &Ifo) -> bool {
        let _ = (producer, consumer);
        false
    }

    /// The recycling decision for a speculative grant (§IV-D): `x` was
    /// granted on the strength of its grandparent's broadcast and its
    /// parent issued this cycle — is the parent's within-cycle slack
    /// actually usable? Schedulers without eager grandparent wakeup never
    /// see this hook.
    fn spec_grant_usable(&self, state: &PipelineState, x: &Ifo, parent: &Ifo, t: u64) -> bool {
        let _ = (state, x, parent, t);
        false
    }

    /// On-issue: completion timing of a recyclable (single-cycle-class)
    /// op whose evaluation begins at `issue.start` after being selected at
    /// `issue.cycle`. Multi-cycle, memory and control classes are
    /// mechanism and are timed by the pipeline itself. The default
    /// completes at the next clock boundary.
    fn on_issue(&self, state: &mut PipelineState, issue: &IssueArgs) -> ExecTiming {
        ExecTiming::boundary(state.quant(), issue.cycle)
    }

    /// Post-issue hook: `producer` (already marked issued) was selected
    /// at cycle `t`. A fusing scheduler may pack dependent ops into the
    /// same execution cycle here, returning them for event emission.
    fn post_issue(&self, state: &mut PipelineState, producer: u64, t: u64) -> Vec<FusedIssue> {
        let _ = (state, producer, t);
        Vec::new()
    }

    /// On-writeback hook: `x` is retiring at `cycle`. Default no-op; the
    /// extension point for designs that train on observed completion
    /// times (e.g. load-delay-tracking schedulers).
    fn on_writeback(&self, x: &Ifo, cycle: u64) {
        let _ = (x, cycle);
    }

    /// Serialize scheduler-private mutable state for a pipeline snapshot.
    ///
    /// **Contract:** everything the scheduler reads in later cycles that
    /// is *not* reconstructible from its configuration and the serialized
    /// [`PipelineState`] must round-trip through this pair of hooks —
    /// otherwise a restored run diverges from the uninterrupted one. The
    /// default returns an empty blob, correct for any stateless policy
    /// (all four in-tree schedulers are stateless: their fields are
    /// config-derived and never mutated; predictor tables live in
    /// `PipelineState` — audit notes in each module).
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore scheduler-private state captured by [`Scheduler::snapshot`].
    ///
    /// The default accepts only the empty blob its `snapshot` default
    /// produces, so a stateful scheduler that overrides one hook without
    /// the other fails loudly instead of resuming with silently reset
    /// state.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when the blob cannot be
    /// applied to this scheduler.
    fn restore(&mut self, blob: &[u8]) -> Result<(), String> {
        if blob.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "scheduler '{}' has no private state, but the snapshot carries {} bytes",
                self.name(),
                blob.len()
            ))
        }
    }
}

/// Build the scheduler implementing `config.mode` — the registry the
/// simulator (and thereby every figure binary and the sweep runner) uses.
#[must_use]
pub fn build_scheduler(config: &SchedulerConfig) -> Box<dyn Scheduler> {
    match config.mode {
        SchedMode::Baseline => Box::new(baseline::BaselineScheduler),
        SchedMode::Redsoc => Box::new(redsoc::RedsocScheduler::from_config(config)),
        SchedMode::Mos => Box::new(mos::MosScheduler),
    }
}
