//! Pipeline observability: structured per-cycle events and pluggable sinks.
//!
//! The simulator is generic over an [`EventSink`]; every pipeline stage
//! emits [`PipeEvent`]s through it. The default [`NullSink`] has
//! `ENABLED == false`, so every emission site — including the event
//! construction itself — is guarded by a `const` and compiles away:
//! disabled runs are byte-identical to a build without the layer and make
//! no allocations for it.
//!
//! Shipped sinks:
//!
//! - [`NullSink`] — zero-cost default;
//! - [`VecSink`] — collects every event in memory (tests, analysis);
//! - [`RingSink`] — bounded ring of the most recent events, with
//!   run-length compression of repeated stall cycles; the deadlock
//!   watchdog dumps it into [`SimError::Deadlock`](crate::pipeline::SimError);
//! - [`JsonlSink`] — one JSON object per line to any `io::Write`
//!   (`redsoc trace --format jsonl`);
//! - [`ChromeTraceSink`] — a Chrome `trace_event` document loadable in
//!   `chrome://tracing` / Perfetto, with one track per pipeline stage and
//!   one per functional unit (`redsoc trace --format chrome`).
//!
//! Timestamps are CI *ticks* (`ticks_per_cycle` per clock cycle), so
//! sub-cycle behaviour — transparent mid-cycle starts, completion
//! instants, two-cycle holds — is visible at full resolution.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;

use crate::fu::PoolKind;
use crate::stats::StallCause;

/// One structured pipeline event. `seq` is the dynamic instruction number
/// (the trace order), `pc` the static instruction address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEvent {
    /// Instruction entered the fetch queue.
    Fetch {
        /// Dynamic instruction number.
        seq: u64,
        /// Static instruction address.
        pc: u32,
    },
    /// Instruction renamed and allocated into ROB + RSE (and LSQ if a
    /// memory op).
    Dispatch {
        /// Dynamic instruction number.
        seq: u64,
        /// Static instruction address.
        pc: u32,
        /// Functional-unit pool the op will issue to.
        pool: PoolKind,
    },
    /// Select granted this entry an issue slot this cycle.
    SelectGrant {
        /// Dynamic instruction number.
        seq: u64,
        /// Grandparent-speculative grant (eager grandparent wakeup).
        spec: bool,
    },
    /// Issue succeeded: the op is bound to a functional unit.
    Issue {
        /// Dynamic instruction number.
        seq: u64,
        /// Functional-unit pool.
        pool: PoolKind,
        /// Unit index within the pool.
        unit: u32,
        /// Evaluation start in CI ticks (mid-cycle when transparent).
        start_tick: u64,
        /// Completion instant in CI ticks (the CI-bus broadcast value).
        avail_tick: u64,
        /// FU occupancy in cycles (2 = boundary-crossing transparent hold).
        occupancy: u32,
        /// Evaluation began mid-cycle on recycled slack.
        transparent: bool,
        /// Issued off a grandparent-speculative grant.
        spec: bool,
    },
    /// Last-arrival tag misprediction detected at issue; the entry falls
    /// back to all-operand wakeup after a penalty.
    TagMispredict {
        /// Dynamic instruction number.
        seq: u64,
        /// First cycle the entry may request selection again.
        retry_cycle: u64,
    },
    /// Grandparent mispeculation: the child was selected ahead of its
    /// parent (possible only with skewed selection disabled).
    GpMispeculation {
        /// Dynamic instruction number.
        seq: u64,
        /// First cycle the entry may request selection again.
        retry_cycle: u64,
    },
    /// A grandparent-speculative grant was consumed without issuing (no
    /// recyclable slack, or the parent did not issue this cycle).
    SpecWasted {
        /// Dynamic instruction number.
        seq: u64,
    },
    /// Completion-Instant broadcast on the CI bus (sub-cycle resolution).
    CiBroadcast {
        /// Dynamic instruction number of the producer.
        seq: u64,
        /// Broadcast completion instant in CI ticks.
        avail_tick: u64,
    },
    /// Result available to the in-order retire stage (emitted at retire,
    /// stamped with the recorded completion cycle).
    Writeback {
        /// Dynamic instruction number.
        seq: u64,
        /// Cycle the result became retirable.
        done_cycle: u64,
    },
    /// Instruction retired in program order.
    Commit {
        /// Dynamic instruction number.
        seq: u64,
        /// Static instruction address.
        pc: u32,
    },
    /// Front-end flush: fetch resumed after a mispredicted branch
    /// resolved.
    FetchRedirect {
        /// Dynamic instruction number of the mispredicted branch.
        seq: u64,
        /// Cycle fetch resumes.
        resume_cycle: u64,
    },
    /// A cycle that retired nothing, attributed to exactly one cause (the
    /// stall-attribution partition).
    StallCycle {
        /// The attributed stall cause.
        cause: StallCause,
    },
    /// The memory model structurally rejected a load at issue (every MSHR
    /// busy with a different line); the entry parks until `retry_cycle`.
    MemReject {
        /// Dynamic instruction number.
        seq: u64,
        /// First cycle the entry may request selection again.
        retry_cycle: u64,
    },
    /// An accepted memory request experienced contention: it merged into
    /// an outstanding same-line miss and/or waited on ports or DRAM
    /// bandwidth. Never emitted by the classic model.
    MemContention {
        /// Dynamic instruction number.
        seq: u64,
        /// Merged into an already-outstanding miss to the same line.
        merged: bool,
        /// Cycles spent waiting for a cache access port.
        port_wait: u64,
        /// Cycles spent queued for DRAM bandwidth.
        queue_wait: u64,
    },
    /// A load was satisfied by store-to-load forwarding from an older
    /// in-flight store instead of the cache hierarchy.
    StoreForward {
        /// Dynamic instruction number of the load.
        seq: u64,
        /// Dynamic instruction number of the forwarding store.
        store_seq: u64,
    },
}

impl PipeEvent {
    /// Machine-readable event-type label (the JSONL `event` field).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PipeEvent::Fetch { .. } => "fetch",
            PipeEvent::Dispatch { .. } => "dispatch",
            PipeEvent::SelectGrant { .. } => "select_grant",
            PipeEvent::Issue { .. } => "issue",
            PipeEvent::TagMispredict { .. } => "tag_mispredict",
            PipeEvent::GpMispeculation { .. } => "gp_mispeculation",
            PipeEvent::SpecWasted { .. } => "spec_wasted",
            PipeEvent::CiBroadcast { .. } => "ci_broadcast",
            PipeEvent::Writeback { .. } => "writeback",
            PipeEvent::Commit { .. } => "commit",
            PipeEvent::FetchRedirect { .. } => "fetch_redirect",
            PipeEvent::StallCycle { .. } => "stall_cycle",
            PipeEvent::MemReject { .. } => "mem_reject",
            PipeEvent::MemContention { .. } => "mem_contention",
            PipeEvent::StoreForward { .. } => "store_forward",
        }
    }
}

/// Receiver of pipeline events. Implementations must be cheap: the
/// simulator calls [`EventSink::record`] from its hottest loops.
pub trait EventSink {
    /// Statically `false` only for [`NullSink`]: every emission site is
    /// guarded by this constant, so disabled runs pay nothing — not even
    /// event construction.
    const ENABLED: bool = true;

    /// Record one event observed during `cycle`.
    fn record(&mut self, cycle: u64, ev: &PipeEvent);

    /// Human-readable dump of the most recent events, oldest first. Sinks
    /// without retention return an empty vector. Used by the deadlock
    /// watchdog to attach a diagnostic to the error.
    fn recent(&self) -> Vec<String> {
        Vec::new()
    }
}

/// The zero-cost default sink: records nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _cycle: u64, _ev: &PipeEvent) {}
}

/// Collects every event in memory. Unbounded — tests and short traces
/// only.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All recorded `(cycle, event)` pairs, in emission order.
    pub events: Vec<(u64, PipeEvent)>,
}

impl VecSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        VecSink::default()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, cycle: u64, ev: &PipeEvent) {
        self.events.push((cycle, *ev));
    }

    fn recent(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|(c, e)| format!("cycle {c}: {e:?}"))
            .collect()
    }
}

/// One retained entry of a [`RingSink`]: a run of `repeat` identical
/// events spanning `first_cycle..=last_cycle`.
#[derive(Debug, Clone, Copy)]
struct RingEntry {
    first_cycle: u64,
    last_cycle: u64,
    repeat: u64,
    ev: PipeEvent,
}

/// Bounded ring of the most recent events. Consecutive identical stall
/// cycles collapse into one run-length entry, so a long stall cannot flush
/// the pipeline activity that led into it out of the window.
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    entries: VecDeque<RingEntry>,
}

impl RingSink {
    /// Default retention used by the CLI (`redsoc run`).
    pub const DEFAULT_CAP: usize = 256;

    /// A ring retaining at most `cap` entries (`cap >= 1`; clamped).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            entries: VecDeque::new(),
        }
    }
}

impl EventSink for RingSink {
    fn record(&mut self, cycle: u64, ev: &PipeEvent) {
        if let (PipeEvent::StallCycle { cause }, Some(last)) = (ev, self.entries.back_mut()) {
            if let PipeEvent::StallCycle { cause: prev } = last.ev {
                if prev == *cause {
                    last.last_cycle = cycle;
                    last.repeat += 1;
                    return;
                }
            }
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(RingEntry {
            first_cycle: cycle,
            last_cycle: cycle,
            repeat: 1,
            ev: *ev,
        });
    }

    fn recent(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                if e.repeat == 1 {
                    format!("cycle {}: {:?}", e.first_cycle, e.ev)
                } else {
                    format!(
                        "cycles {}..={}: {:?} x{}",
                        e.first_cycle, e.last_cycle, e.ev, e.repeat
                    )
                }
            })
            .collect()
    }
}

/// Streams one JSON object per event line to any writer (the `jsonl`
/// format of `redsoc trace`). Field names are stable schema: every line
/// carries `cycle` and `event`, plus the per-variant payload documented in
/// `EXPERIMENTS.md`.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    buf: String,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Stream events to `out` (wrap files in `BufWriter`).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            buf: String::with_capacity(160),
            lines: 0,
        }
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the final flush fails.
    #[allow(clippy::expect_used)] // documented panic: a sink cannot return I/O errors
    pub fn finish(mut self) -> W {
        self.out.flush().expect("event sink flush");
        self.out
    }
}

/// Render one event as a single JSONL line (no trailing newline).
fn jsonl_line(buf: &mut String, cycle: u64, ev: &PipeEvent) {
    buf.clear();
    let _ = write!(buf, "{{\"cycle\":{cycle},\"event\":\"{}\"", ev.label());
    match *ev {
        PipeEvent::Fetch { seq, pc } => {
            let _ = write!(buf, ",\"seq\":{seq},\"pc\":{pc}");
        }
        PipeEvent::Dispatch { seq, pc, pool } => {
            let _ = write!(
                buf,
                ",\"seq\":{seq},\"pc\":{pc},\"pool\":\"{}\"",
                pool.label()
            );
        }
        PipeEvent::SelectGrant { seq, spec } => {
            let _ = write!(buf, ",\"seq\":{seq},\"spec\":{spec}");
        }
        PipeEvent::Issue {
            seq,
            pool,
            unit,
            start_tick,
            avail_tick,
            occupancy,
            transparent,
            spec,
        } => {
            let _ = write!(
                buf,
                ",\"seq\":{seq},\"pool\":\"{}\",\"unit\":{unit},\"start_tick\":{start_tick},\
                 \"avail_tick\":{avail_tick},\"occupancy\":{occupancy},\
                 \"transparent\":{transparent},\"spec\":{spec}",
                pool.label()
            );
        }
        PipeEvent::TagMispredict { seq, retry_cycle }
        | PipeEvent::GpMispeculation { seq, retry_cycle } => {
            let _ = write!(buf, ",\"seq\":{seq},\"retry_cycle\":{retry_cycle}");
        }
        PipeEvent::SpecWasted { seq } => {
            let _ = write!(buf, ",\"seq\":{seq}");
        }
        PipeEvent::CiBroadcast { seq, avail_tick } => {
            let _ = write!(buf, ",\"seq\":{seq},\"avail_tick\":{avail_tick}");
        }
        PipeEvent::Writeback { seq, done_cycle } => {
            let _ = write!(buf, ",\"seq\":{seq},\"done_cycle\":{done_cycle}");
        }
        PipeEvent::Commit { seq, pc } => {
            let _ = write!(buf, ",\"seq\":{seq},\"pc\":{pc}");
        }
        PipeEvent::FetchRedirect { seq, resume_cycle } => {
            let _ = write!(buf, ",\"seq\":{seq},\"resume_cycle\":{resume_cycle}");
        }
        PipeEvent::StallCycle { cause } => {
            let _ = write!(buf, ",\"cause\":\"{}\"", cause.label());
        }
        PipeEvent::MemReject { seq, retry_cycle } => {
            let _ = write!(buf, ",\"seq\":{seq},\"retry_cycle\":{retry_cycle}");
        }
        PipeEvent::MemContention {
            seq,
            merged,
            port_wait,
            queue_wait,
        } => {
            let _ = write!(
                buf,
                ",\"seq\":{seq},\"merged\":{merged},\"port_wait\":{port_wait},\
                 \"queue_wait\":{queue_wait}"
            );
        }
        PipeEvent::StoreForward { seq, store_seq } => {
            let _ = write!(buf, ",\"seq\":{seq},\"store_seq\":{store_seq}");
        }
    }
    buf.push('}');
}

impl<W: Write> EventSink for JsonlSink<W> {
    // `EventSink::record` has no error channel (the per-cycle hot path
    // stays Result-free); a failed trace write aborts loudly rather than
    // silently dropping events.
    #[allow(clippy::expect_used)]
    fn record(&mut self, cycle: u64, ev: &PipeEvent) {
        jsonl_line(&mut self.buf, cycle, ev);
        self.buf.push('\n');
        self.out
            .write_all(self.buf.as_bytes())
            .expect("event sink write");
        self.lines += 1;
    }
}

/// Track (thread) ids of the Chrome trace: fixed per pipeline stage, one
/// per functional unit.
mod chrome_tid {
    use crate::fu::PoolKind;

    pub const FETCH: u32 = 0;
    pub const DISPATCH: u32 = 1;
    pub const SELECT: u32 = 2;
    pub const ISSUE: u32 = 3;
    pub const CI_BUS: u32 = 4;
    pub const WRITEBACK: u32 = 5;
    pub const COMMIT: u32 = 6;
    pub const STALL: u32 = 7;

    /// Stage tracks, in display order.
    pub const STAGES: [(u32, &str); 8] = [
        (FETCH, "stage: fetch"),
        (DISPATCH, "stage: dispatch"),
        (SELECT, "stage: select"),
        (ISSUE, "stage: issue"),
        (CI_BUS, "stage: ci-bus"),
        (WRITEBACK, "stage: writeback"),
        (COMMIT, "stage: commit"),
        (STALL, "stall attribution"),
    ];

    /// The track of unit `unit` in `pool` (30 slots reserved per pool).
    pub fn fu(pool: PoolKind, unit: u32) -> u32 {
        let base = match pool {
            PoolKind::Alu => 100,
            PoolKind::Simd => 130,
            PoolKind::Fp => 160,
            PoolKind::Mem => 190,
        };
        base + unit.min(29)
    }
}

/// Emits the Chrome `trace_event` format (JSON object with a
/// `traceEvents` array), loadable in `chrome://tracing` or Perfetto.
///
/// Timestamps are CI ticks mapped to microseconds (1 tick = 1 "µs"), so
/// one clock cycle spans `ticks_per_cycle` units and transparent mid-cycle
/// starts are visible. Execution spans render on one track per functional
/// unit; fetch/dispatch/select/commit render as instants on per-stage
/// tracks; stall-attributed cycles render as a labelled band.
#[derive(Debug, Clone)]
pub struct ChromeTraceSink {
    tpc: u64,
    rows: Vec<String>,
    named_fus: Vec<u32>,
}

impl ChromeTraceSink {
    /// A sink for a machine with `ticks_per_cycle` CI ticks per cycle
    /// (`SchedulerConfig::quant().ticks_per_cycle()`).
    #[must_use]
    pub fn new(ticks_per_cycle: u64) -> Self {
        let mut sink = ChromeTraceSink {
            tpc: ticks_per_cycle.max(1),
            rows: Vec::new(),
            named_fus: Vec::new(),
        };
        for (tid, name) in chrome_tid::STAGES {
            sink.name_track(tid, name);
        }
        sink
    }

    fn name_track(&mut self, tid: u32, name: &str) {
        self.rows.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        self.rows.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{tid}}}}}"
        ));
    }

    fn instant(&mut self, tid: u32, ts: u64, name: &str) {
        self.rows.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{tid}}}"
        ));
    }

    fn span(&mut self, tid: u32, ts: u64, dur: u64, name: &str, args: &str) {
        self.rows.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}"
        ));
    }

    /// Number of trace rows emitted so far (metadata included).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Serialise the complete `chrome://tracing` document.
    #[must_use]
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(row);
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("]}\n");
        out
    }
}

impl EventSink for ChromeTraceSink {
    fn record(&mut self, cycle: u64, ev: &PipeEvent) {
        let cyc_ts = cycle * self.tpc;
        match *ev {
            PipeEvent::Fetch { seq, .. } => {
                self.instant(chrome_tid::FETCH, cyc_ts, &format!("fetch #{seq}"));
            }
            PipeEvent::Dispatch { seq, pool, .. } => {
                self.instant(
                    chrome_tid::DISPATCH,
                    cyc_ts,
                    &format!("dispatch #{seq} ({})", pool.label()),
                );
            }
            PipeEvent::SelectGrant { seq, spec } => {
                let tag = if spec { " spec" } else { "" };
                self.instant(chrome_tid::SELECT, cyc_ts, &format!("grant #{seq}{tag}"));
            }
            PipeEvent::Issue {
                seq,
                pool,
                unit,
                start_tick,
                avail_tick,
                occupancy,
                transparent,
                spec,
            } => {
                let tid = chrome_tid::fu(pool, unit);
                if !self.named_fus.contains(&tid) {
                    self.named_fus.push(tid);
                    self.name_track(tid, &format!("{}{unit}", pool.label()));
                }
                let dur = avail_tick.saturating_sub(start_tick).max(1);
                let args = format!(
                    "\"occupancy\":{occupancy},\"transparent\":{transparent},\"spec\":{spec}"
                );
                self.span(tid, start_tick, dur, &format!("#{seq}"), &args);
                self.instant(chrome_tid::ISSUE, cyc_ts, &format!("issue #{seq}"));
            }
            PipeEvent::TagMispredict { seq, .. } => {
                self.instant(chrome_tid::ISSUE, cyc_ts, &format!("tag-mispredict #{seq}"));
            }
            PipeEvent::GpMispeculation { seq, .. } => {
                self.instant(chrome_tid::ISSUE, cyc_ts, &format!("gp-mispec #{seq}"));
            }
            PipeEvent::SpecWasted { seq } => {
                self.instant(chrome_tid::ISSUE, cyc_ts, &format!("spec-wasted #{seq}"));
            }
            PipeEvent::CiBroadcast { seq, avail_tick } => {
                self.instant(chrome_tid::CI_BUS, avail_tick, &format!("CI #{seq}"));
            }
            PipeEvent::Writeback { seq, done_cycle } => {
                self.instant(
                    chrome_tid::WRITEBACK,
                    done_cycle * self.tpc,
                    &format!("writeback #{seq}"),
                );
            }
            PipeEvent::Commit { seq, .. } => {
                self.instant(chrome_tid::COMMIT, cyc_ts, &format!("commit #{seq}"));
            }
            PipeEvent::FetchRedirect { seq, resume_cycle } => {
                let dur = resume_cycle.saturating_sub(cycle).max(1) * self.tpc;
                self.span(
                    chrome_tid::FETCH,
                    cyc_ts,
                    dur,
                    &format!("redirect #{seq}"),
                    "",
                );
            }
            PipeEvent::StallCycle { cause } => {
                self.span(chrome_tid::STALL, cyc_ts, self.tpc, cause.label(), "");
            }
            PipeEvent::MemReject { seq, .. } => {
                self.instant(chrome_tid::ISSUE, cyc_ts, &format!("mem-reject #{seq}"));
            }
            PipeEvent::MemContention { seq, .. } => {
                self.instant(chrome_tid::ISSUE, cyc_ts, &format!("mem-contention #{seq}"));
            }
            PipeEvent::StoreForward { seq, store_seq } => {
                self.instant(
                    chrome_tid::ISSUE,
                    cyc_ts,
                    &format!("stl-forward #{seq}<-#{store_seq}"),
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_issue() -> PipeEvent {
        PipeEvent::Issue {
            seq: 7,
            pool: PoolKind::Alu,
            unit: 2,
            start_tick: 83,
            avail_tick: 86,
            occupancy: 1,
            transparent: true,
            spec: false,
        }
    }

    #[test]
    fn null_sink_is_statically_disabled() {
        const { assert!(!NullSink::ENABLED) };
        const { assert!(VecSink::ENABLED) };
        let mut s = NullSink;
        s.record(0, &sample_issue());
        assert!(s.recent().is_empty());
    }

    #[test]
    fn jsonl_lines_are_valid_single_objects() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(10, &sample_issue());
        sink.record(
            11,
            &PipeEvent::StallCycle {
                cause: StallCause::Memory,
            },
        );
        assert_eq!(sink.lines(), 2);
        let bytes = sink.finish();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"cycle\":10,\"event\":\"issue\""));
        assert!(lines[0].contains("\"transparent\":true"));
        assert!(lines[1].contains("\"cause\":\"memory\""));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn ring_sink_compresses_stall_runs_and_bounds_entries() {
        let mut ring = RingSink::new(4);
        ring.record(0, &sample_issue());
        for c in 1..=1000 {
            ring.record(
                c,
                &PipeEvent::StallCycle {
                    cause: StallCause::Frontend,
                },
            );
        }
        let dump = ring.recent();
        assert_eq!(dump.len(), 2, "stall run must collapse: {dump:?}");
        assert!(dump[0].contains("Issue"), "activity retained: {dump:?}");
        assert!(dump[1].contains("x1000"), "run length recorded: {dump:?}");
        // Distinct events still rotate out beyond the cap.
        for s in 0..10u64 {
            ring.record(2000 + s, &PipeEvent::Commit { seq: s, pc: 0 });
        }
        assert_eq!(ring.recent().len(), 4);
    }

    #[test]
    fn chrome_trace_has_stage_and_fu_tracks() {
        let mut sink = ChromeTraceSink::new(8);
        sink.record(10, &sample_issue());
        sink.record(11, &PipeEvent::Commit { seq: 7, pc: 0x40 });
        let doc = sink.finish();
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("stage: commit"));
        assert!(doc.contains("\"alu2\""), "per-FU track named: {doc}");
        assert!(doc.contains("\"ph\":\"X\""), "execution span present");
    }
}
