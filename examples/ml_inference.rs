//! ML inference pipeline: run the five Table II kernels (CONV → ACT →
//! POOL0 → POOL1 → SOFTMAX) across all three Table I cores and report the
//! ReDSOC speedups — a miniature of the paper's ML evaluation.
//!
//! ```sh
//! cargo run --release --example ml_inference
//! ```

use redsoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels = [
        Benchmark::Conv,
        Benchmark::Act,
        Benchmark::Pool0,
        Benchmark::Pool1,
        Benchmark::Softmax,
    ];
    let cores = [
        ("BIG", CoreConfig::big()),
        ("MEDIUM", CoreConfig::medium()),
        ("SMALL", CoreConfig::small()),
    ];

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>9}",
        "kernel", "core", "base IPC", "rd IPC", "speedup"
    );
    for kernel in kernels {
        let trace = kernel.trace(60_000);
        for (name, core) in &cores {
            let base = simulate(trace.iter().copied(), core.clone())?;
            let red = simulate(
                trace.iter().copied(),
                core.clone().with_sched(SchedulerConfig::redsoc()),
            )?;
            println!(
                "{:<10} {:>8} {:>10.2} {:>10.2} {:>8.1}%",
                kernel.name(),
                name,
                base.ipc(),
                red.ipc(),
                (red.speedup_over(&base) - 1.0) * 100.0
            );
        }
    }
    Ok(())
}
