//! Write a workload in textual assembly, assemble it, and measure how
//! much of its data slack ReDSOC recycles.
//!
//! ```sh
//! cargo run --release --example custom_assembly
//! ```

use redsoc::isa::asm::assemble;
use redsoc::prelude::*;

const SOURCE: &str = r"
    ; Fixed-point FIR-ish filter over a sample buffer: a serial chain of
    ; narrow adds, shifts and masks per tap -- prime slack-recycling food.
    .words coeffs 3 5 7 9
    .zero  samples 1024
    .zero  out 1024

            mov r0, =samples
            mov r1, =out
            mov r2, #240            ; sample counter
outer:
            ldr r3, [r0]
            ldr r4, [r0, #4]
            ldr r5, [r0, #8]
            ; IIR-style: the filter state r6 carries across iterations,
            ; so this 5-op chain is the loop's serial spine.
            add r6, r6, r4, lsr #2
            add r6, r6, r5, lsr #3
            and r6, r6, #0xFFFF     ; keep it narrow
            eor r7, r6, r3
            orr r6, r7, #1
            str r6, [r1]
            add r0, r0, #4
            add r1, r1, #4
            subs r2, r2, #1
            bne outer
            halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;
    println!(
        "assembled {} instructions:\n{}",
        program.len(),
        &program.disassemble()[..300]
    );

    let mut interp = Interpreter::new(&program);
    let trace = interp.run(1_000_000)?;
    println!("dynamic instructions: {}", trace.len());

    for (name, core) in [("BIG", CoreConfig::big()), ("SMALL", CoreConfig::small())] {
        let base = simulate(trace.iter().copied(), core.clone())?;
        let red = simulate(
            trace.iter().copied(),
            core.with_sched(SchedulerConfig::redsoc()),
        )?;
        println!(
            "{name:<6} baseline {} cycles → redsoc {} cycles ({:+.1}%, {} recycled)",
            base.cycles,
            red.cycles,
            (red.speedup_over(&base) - 1.0) * 100.0,
            red.recycled_ops,
        );
    }
    Ok(())
}
