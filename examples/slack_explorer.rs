//! Slack explorer: inspect the design-time timing model — per-op compute
//! times, width scaling, slack buckets and the clock-period breakdown
//! behind Figs. 1–3.
//!
//! ```sh
//! cargo run --release --example slack_explorer
//! ```

use redsoc::prelude::*;
use redsoc::timing::kogge_stone::adder_delay_ps;
use redsoc::timing::optime::{alu_compute_ps, CYCLE_PS};

fn main() {
    println!("clock period: {CYCLE_PS} ps (2 GHz)\n");

    println!("opcode slack — a logic op vs the critical shifted add:");
    for (label, op, shift) in [
        ("AND r,r,r", AluOp::And, false),
        ("ADD r,r,r", AluOp::Add, false),
        ("ADD r,r,r LSR #3", AluOp::Add, true),
    ] {
        let t = alu_compute_ps(op, shift, 32);
        println!(
            "  {label:<18} {t:>4} ps  ({:>2}% slack)",
            (CYCLE_PS - t) * 100 / CYCLE_PS
        );
    }

    println!("\nwidth slack — the same ADD at narrower effective widths:");
    for bits in [32u8, 24, 16, 8] {
        let t = alu_compute_ps(AluOp::Add, false, bits);
        println!(
            "  {bits:>2}-bit operands   {t:>4} ps  (KS carry path {} ps)",
            adder_delay_ps(u32::from(bits))
        );
    }

    println!("\nthe 14 slack buckets and their LUT entries:");
    let lut = SlackLut::new();
    for bucket in SlackBucket::all() {
        println!(
            "  {:<36} addr {:>#07b}  {:>3} ps compute, {:>3} ps slack",
            format!("{bucket:?}"),
            bucket.lut_address(),
            lut.compute_ps(bucket),
            lut.slack_ps(bucket)
        );
    }

    println!("\naccumulated over a chain, slack crosses cycle boundaries:");
    let eor = alu_compute_ps(AluOp::Eor, false, 32);
    let mut t = 0u32;
    for i in 1..=5 {
        t += eor;
        println!(
            "  after {i} chained EORs: {t:>4} ps = {:.2} cycles (synchronous would use {i})",
            f64::from(t) / f64::from(CYCLE_PS)
        );
    }
}
