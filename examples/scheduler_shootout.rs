//! Scheduler shoot-out: Baseline vs ReDSOC vs TS vs MOS on one benchmark
//! (§VI-D's comparison, per benchmark instead of per class).
//!
//! ```sh
//! cargo run --release --example scheduler_shootout -- crc
//! cargo run --release --example scheduler_shootout -- bzip2
//! ```

use redsoc::core::sched::ts::run_ts;
use redsoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crc".to_string());
    let bench = Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&name))
        .ok_or_else(|| {
            let names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
            format!("unknown benchmark {name:?}; choose one of {names:?}")
        })?;

    let trace = bench.trace(100_000);
    let core = CoreConfig::big();

    let base = simulate(trace.iter().copied(), core.clone())?;
    let red = simulate(
        trace.iter().copied(),
        core.clone().with_sched(SchedulerConfig::redsoc()),
    )?;
    let mos = simulate(
        trace.iter().copied(),
        core.clone().with_sched(SchedulerConfig::mos()),
    )?;
    let ts = run_ts(&trace, &core, base.cycles, 0.01)?;

    println!(
        "benchmark: {} ({} dynamic instructions, BIG core)",
        bench.name(),
        trace.len()
    );
    println!("{:<10} {:>12} {:>10}", "scheduler", "cycles", "speedup");
    println!("{:<10} {:>12} {:>9.1}%", "baseline", base.cycles, 0.0);
    println!(
        "{:<10} {:>12} {:>9.1}%",
        "ReDSOC",
        red.cycles,
        (red.speedup_over(&base) - 1.0) * 100.0
    );
    println!(
        "{:<10} {:>12} {:>9.1}%  (clock {} ps, err {:.3}%)",
        "TS",
        ts.cycles,
        (ts.speedup - 1.0) * 100.0,
        ts.clock_ps,
        ts.error_rate * 100.0
    );
    println!(
        "{:<10} {:>12} {:>9.1}%",
        "MOS",
        mos.cycles,
        (mos.speedup_over(&base) - 1.0) * 100.0
    );
    println!(
        "\nReDSOC detail: {} recycled, {} EGPW issues, E[chain] {:.2}, FU stalls {:.1}%",
        red.recycled_ops,
        red.egpw_issues,
        red.chains.weighted_mean(),
        red.fu_stall_rate() * 100.0
    );
    Ok(())
}
