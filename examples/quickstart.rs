//! Quickstart: write a tiny kernel in the micro-ISA, execute it
//! functionally, then replay the trace on the paper's Big core under
//! baseline and ReDSOC scheduling.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use redsoc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dependence chain of high-slack logic ops with a loop around it —
    //    the kind of code ReDSOC accelerates.
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    b.mov_imm(r(0), 5_000); // loop counter
    b.mov_imm(r(1), 0xDEAD_BEEF);
    b.bind(top);
    b.eor(r(1), r(1), op_imm(0x55));
    b.ror(r(2), r(1), op_imm(7));
    b.and_(r(1), r(2), op_imm(0xFFFF));
    b.orr(r(1), r(1), op_imm(0x10));
    b.subs(r(0), r(0), op_imm(1));
    b.bne(top);
    b.halt();
    let program = b.build()?;

    // 2. Functional execution → dynamic trace.
    let mut interp = Interpreter::new(&program);
    let trace = interp.run(1_000_000)?;
    println!(
        "traced {} dynamic instructions; r1 = {:#x}",
        trace.len(),
        interp.reg(r(1))
    );

    // 3. Cycle-level simulation, baseline vs ReDSOC.
    let base = simulate(trace.iter().copied(), CoreConfig::big())?;
    let red = simulate(
        trace.iter().copied(),
        CoreConfig::big().with_sched(SchedulerConfig::redsoc()),
    )?;

    println!("baseline: {} cycles (IPC {:.2})", base.cycles, base.ipc());
    println!("redsoc:   {} cycles (IPC {:.2})", red.cycles, red.ipc());
    println!(
        "speedup:  {:.1}%  ({} ops recycled; E[chain] = {:.1})",
        (red.speedup_over(&base) - 1.0) * 100.0,
        red.recycled_ops,
        red.chains.weighted_mean()
    );
    Ok(())
}
