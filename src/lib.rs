//! # redsoc — Recycling Data Slack in Out-of-Order Cores
//!
//! A from-scratch Rust reproduction of Ravi & Lipasti,
//! *"Recycling Data Slack in Out-of-Order Cores"* (HPCA 2019): a
//! cycle-level out-of-order core simulator whose scheduler recycles the
//! unused tail of the clock period ("data slack") by starting dependent
//! operations at their producers' exact completion instants through a
//! transparent-flip-flop bypass network.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`isa`] — ARM-flavoured micro-ISA, functional interpreter, traces;
//! - [`timing`] — circuit timing & slack models (Fig. 1–3), width
//!   predictor, DVFS power model;
//! - [`mem`] — L1/L2 cache hierarchy with stride prefetching (Table I);
//! - [`core`] — the out-of-order core with Baseline / ReDSOC / TS / MOS
//!   schedulers (§III–IV, §VI-D);
//! - [`workloads`] — the sixteen evaluation benchmarks (§V);
//! - [`mod@bench`] — the parallel experiment engine (shared trace cache,
//!   job grids, machine-readable sweep output);
//! - [`verify`] — differential fuzzing and lockstep verification
//!   (`redsoc fuzz`): random programs checked across the interpreter and
//!   every scheduler, with automatic shrinking of divergences.
//!
//! ## Quick start
//!
//! ```
//! use redsoc::prelude::*;
//!
//! // Trace a workload and compare baseline vs ReDSOC scheduling.
//! let trace = Benchmark::Bitcnt.trace(20_000);
//! let base = simulate(trace.iter().copied(), CoreConfig::big())?;
//! let red = simulate(
//!     trace.iter().copied(),
//!     CoreConfig::big().with_sched(SchedulerConfig::redsoc()),
//! )?;
//! assert!(red.speedup_over(&base) > 1.05, "bitcount recycles slack");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure and table.

#![warn(missing_docs)]

pub use redsoc_bench as bench;
pub use redsoc_core as core;
pub use redsoc_isa as isa;
pub use redsoc_mem as mem;
pub use redsoc_timing as timing;
pub use redsoc_verify as verify;
pub use redsoc_workloads as workloads;

/// One-stop imports for driving simulations.
pub mod prelude {
    pub use redsoc_core::config::{CoreConfig, SchedMode, SchedulerConfig};
    pub use redsoc_core::events::{
        ChromeTraceSink, EventSink, JsonlSink, NullSink, PipeEvent, RingSink, VecSink,
    };
    pub use redsoc_core::pipeline::{simulate, simulate_events, CancelToken, SimError, Simulator};
    pub use redsoc_core::sched::ts::{run_ts, TsResult};
    pub use redsoc_core::sched::{build_scheduler, Scheduler, SelectRequest};
    pub use redsoc_core::stats::{OpCategory, SimReport, StallBreakdown, StallCause};
    pub use redsoc_isa::prelude::*;
    pub use redsoc_timing::slack::{SlackBucket, SlackLut, WidthClass};
    pub use redsoc_workloads::{BenchClass, Benchmark};
}
