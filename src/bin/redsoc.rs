//! `redsoc` — command-line driver for the simulator.
//!
//! ```sh
//! redsoc list
//! redsoc run bitcnt --core big --sched redsoc --len 200000
//! redsoc run bitcnt --events bitcnt.jsonl
//! redsoc trace conv --format chrome --out conv_trace.json
//! redsoc compare crc --core medium
//! redsoc sweep bzip2 --knob threshold
//! redsoc bench --threads 8 --len 300000 --out BENCH_sweep.json
//! redsoc bench --journal sweep.jnl --job-timeout 50000000
//! redsoc bench --journal sweep.jnl --snapshot-interval 100000
//! redsoc bench --resume sweep.jnl --out BENCH_sweep.json
//! redsoc chaos --kills 5 --seed 1 --len 20000
//! redsoc sweepcmp a_sweep.json b_sweep.json
//! redsoc perfgate BENCH_sweep.json fresh_sweep.json --tolerance 15
//! ```
//!
//! Exit codes are structured so scripts can tell failure modes apart:
//! `0` success, `1` I/O or comparison mismatch, `2` usage error, `3`
//! simulator error, `4` sweep completed but with failed cells.

// A crash in the driver loses an operator's sweep; every fallible path
// must flow into the structured `CliError` exit codes instead.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

use redsoc::bench::journal::Journal;
use redsoc::bench::pool::WorkerPoolConfig;
use redsoc::bench::runner::{
    canonicalize_sweep, run_grid_isolated, run_grid_supervised, sweep_json, Isolation, Mode,
};
use redsoc::bench::supervisor::{FaultPlan, SupervisorConfig};
use redsoc::core::sched::ts::run_ts;
use redsoc::prelude::*;

/// A classified CLI failure: the message goes to stderr, the kind picks
/// the process exit code.
enum CliError {
    /// Bad invocation: unknown command, flag, or flag value (exit 2).
    Usage(String),
    /// Filesystem / serialisation trouble, or a `sweepcmp` mismatch
    /// (exit 1).
    Io(String),
    /// The simulator itself reported an error (exit 3).
    Sim(String),
    /// The sweep ran to completion but some cells failed (exit 4).
    Partial(String),
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Sim(m) | CliError::Partial(m) => m,
        }
    }

    fn code(&self) -> ExitCode {
        match self {
            CliError::Io(_) => ExitCode::from(1),
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Sim(_) => ExitCode::from(3),
            CliError::Partial(_) => ExitCode::from(4),
        }
    }
}

type CliResult = Result<(), CliError>;

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn parse_core(s: &str) -> Result<CoreConfig, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "small" => Ok(CoreConfig::small()),
        "medium" => Ok(CoreConfig::medium()),
        "big" => Ok(CoreConfig::big()),
        other => Err(usage_err(format!(
            "unknown core {other:?} (small|medium|big)"
        ))),
    }
}

fn parse_sched(s: &str) -> Result<SchedulerConfig, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" => Ok(SchedulerConfig::baseline()),
        "redsoc" => Ok(SchedulerConfig::redsoc()),
        "mos" => Ok(SchedulerConfig::mos()),
        other => Err(usage_err(format!(
            "unknown scheduler {other:?} (baseline|redsoc|mos)"
        ))),
    }
}

fn parse_mem_model(s: &str) -> Result<redsoc::mem::MemModelConfig, CliError> {
    redsoc::mem::MemModelConfig::parse(&s.to_ascii_lowercase())
        .ok_or_else(|| usage_err(format!("unknown memory model {s:?} (classic|contended)")))
}

/// Apply an optional `--mem-model` flag to a core config.
fn with_mem_flag(core: CoreConfig, flags: &Flags) -> Result<CoreConfig, CliError> {
    match flags.get("mem-model") {
        Some(s) => Ok(core.with_mem_model(parse_mem_model(s)?)),
        None => Ok(core),
    }
}

fn parse_bench(s: &str) -> Result<Benchmark, CliError> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            let names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
            usage_err(format!("unknown benchmark {s:?}; available: {names:?}"))
        })
}

/// Minimal flag parser: `--key value` pairs after the positional args.
/// Each command declares its accepted keys, so a typo fails with a usage
/// hint instead of being silently ignored.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(usage_err(format!("unexpected argument {a:?}")));
            };
            if !allowed.contains(&key) {
                return Err(usage_err(format!(
                    "unknown flag --{key}; accepted flags here: {}",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                )));
            }
            let Some(v) = it.next() else {
                return Err(usage_err(format!("flag --{key} needs a value")));
            };
            pairs.push((key.to_string(), v.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse a numeric flag, defaulting when absent.
    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            Some(v) => v
                .parse()
                .map_err(|e| usage_err(format!("bad --{key}: {e}"))),
            None => Ok(default),
        }
    }
}

fn print_stalls(rep: &SimReport) {
    println!("stall attribution ({} cycles):", rep.cycles);
    for cause in StallCause::all() {
        let n = rep.stalls.count(cause);
        if n > 0 {
            println!(
                "  {:<14} {:>12}  ({:>5.1}%)",
                cause.label(),
                n,
                n as f64 / rep.cycles as f64 * 100.0
            );
        }
    }
}

fn print_report(label: &str, rep: &SimReport) {
    println!("--- {label} ---");
    println!("cycles        {:>12}", rep.cycles);
    println!("committed     {:>12}", rep.committed);
    println!("IPC           {:>12.3}", rep.ipc());
    println!("recycled ops  {:>12}", rep.recycled_ops);
    println!("STL forwards  {:>12}", rep.stl_forwards);
    let mc = &rep.mem_contention;
    if mc.mshr_rejects + mc.mshr_merges + mc.port_wait_cycles + mc.dram_wait_cycles > 0 {
        println!(
            "mem contention{:>12} MSHR rejects, {} merges, {} port-wait, {} DRAM-wait cycles",
            mc.mshr_rejects, mc.mshr_merges, mc.port_wait_cycles, mc.dram_wait_cycles
        );
    }
    println!(
        "EGPW issues   {:>12}  (wasted {})",
        rep.egpw_issues, rep.egpw_wasted
    );
    println!("2-cycle holds {:>12}", rep.two_cycle_holds);
    println!(
        "E[chain len]  {:>12.2}  ({} sequences)",
        rep.chains.weighted_mean(),
        rep.chains.sequences()
    );
    println!("FU stalls     {:>11.1}%", rep.fu_stall_rate() * 100.0);
    println!(
        "br mispredict {:>11.2}%",
        rep.branch.mispredict_rate() * 100.0
    );
    println!(
        "tag mispredict{:>11.2}%  ({} predictions)",
        rep.tag_pred.mispredict_rate() * 100.0,
        rep.tag_pred.predictions
    );
    println!(
        "width mispred {:>11.2}% aggressive / {:.2}% conservative",
        rep.width_pred.aggressive_rate() * 100.0,
        rep.width_pred.conservative_rate() * 100.0
    );
}

fn cmd_list() -> CliResult {
    println!("{:<12} {:<8}", "benchmark", "class");
    for b in Benchmark::all() {
        println!("{:<12} {:<8}", b.name(), b.class().label());
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let bench = parse_bench(
        args.first()
            .ok_or_else(|| usage_err("usage: redsoc run <bench> [flags]"))?,
    )?;
    let flags = Flags::parse(&args[1..], &["core", "sched", "len", "events", "mem-model"])?;
    let core = with_mem_flag(parse_core(flags.get("core").unwrap_or("big"))?, &flags)?;
    let sched = parse_sched(flags.get("sched").unwrap_or("redsoc"))?;
    let len: u64 = flags.num("len", 100_000)?;
    let trace = bench.trace(len);
    let cfg = core.clone().with_sched(sched.clone());
    let rep = match flags.get("events") {
        Some(path) => {
            // Stream the full event log as JSONL while simulating.
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            let rep = simulate_events(trace.into_iter(), cfg, &mut sink)
                .map_err(|e| CliError::Sim(e.to_string()))?;
            let lines = sink.lines();
            sink.finish();
            println!("wrote {lines} events to {path}");
            rep
        }
        None => {
            // A bounded ring costs almost nothing and gives the deadlock
            // watchdog a pipeline dump to attach to its error.
            let mut ring = RingSink::new(RingSink::DEFAULT_CAP);
            simulate_events(trace.into_iter(), cfg, &mut ring)
                .map_err(|e| CliError::Sim(e.to_string()))?
        }
    };
    print_report(
        &format!("{} on {} ({:?})", bench.name(), core.name, sched.mode),
        &rep,
    );
    print_stalls(&rep);
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    let bench = parse_bench(
        args.first()
            .ok_or_else(|| usage_err("usage: redsoc trace <bench> [flags]"))?,
    )?;
    let flags = Flags::parse(
        &args[1..],
        &["core", "sched", "len", "format", "out", "mem-model"],
    )?;
    let core = with_mem_flag(parse_core(flags.get("core").unwrap_or("big"))?, &flags)?;
    let sched = parse_sched(flags.get("sched").unwrap_or("redsoc"))?;
    let len: u64 = flags.num("len", 20_000)?;
    let format = flags.get("format").unwrap_or("chrome");
    let trace = bench.trace(len);
    let cfg = core.clone().with_sched(sched.clone());
    match format {
        "chrome" => {
            let out = flags.get("out").unwrap_or("trace.json");
            let mut sink = ChromeTraceSink::new(sched.quant().ticks_per_cycle());
            let rep = simulate_events(trace.into_iter(), cfg, &mut sink)
                .map_err(|e| CliError::Sim(e.to_string()))?;
            std::fs::write(out, sink.finish())
                .map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
            println!(
                "{} on {} ({:?}): {} cycles, {} committed",
                bench.name(),
                core.name,
                sched.mode,
                rep.cycles,
                rep.committed
            );
            println!(
                "wrote {} trace rows to {out} (load in chrome://tracing or ui.perfetto.dev)",
                sink.rows()
            );
        }
        "jsonl" => {
            let out = flags.get("out").unwrap_or("trace.jsonl");
            let file = std::fs::File::create(out)
                .map_err(|e| CliError::Io(format!("cannot create {out}: {e}")))?;
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            let rep = simulate_events(trace.into_iter(), cfg, &mut sink)
                .map_err(|e| CliError::Sim(e.to_string()))?;
            let lines = sink.lines();
            sink.finish();
            println!(
                "{} on {} ({:?}): {} cycles, {} committed",
                bench.name(),
                core.name,
                sched.mode,
                rep.cycles,
                rep.committed
            );
            println!("wrote {lines} events to {out}");
        }
        other => {
            return Err(usage_err(format!(
                "unknown format {other:?} (accepted: --format chrome|jsonl)"
            )))
        }
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> CliResult {
    let bench = parse_bench(
        args.first()
            .ok_or_else(|| usage_err("usage: redsoc compare <bench> [flags]"))?,
    )?;
    let flags = Flags::parse(&args[1..], &["core", "len", "mem-model"])?;
    let core = with_mem_flag(parse_core(flags.get("core").unwrap_or("big"))?, &flags)?;
    let len: u64 = flags.num("len", 100_000)?;
    let trace = bench.trace(len);
    let sim_err = |e: SimError| CliError::Sim(e.to_string());
    let base = simulate(trace.iter().copied(), core.clone()).map_err(sim_err)?;
    let red = simulate(
        trace.iter().copied(),
        core.clone().with_sched(SchedulerConfig::redsoc()),
    )
    .map_err(sim_err)?;
    let mos = simulate(
        trace.iter().copied(),
        core.clone().with_sched(SchedulerConfig::mos()),
    )
    .map_err(sim_err)?;
    let ts = run_ts(&trace, &core, base.cycles, 0.01).map_err(sim_err)?;
    println!(
        "{} on {} ({} instructions)",
        bench.name(),
        core.name,
        trace.len()
    );
    println!("{:<10} {:>12} {:>9}", "scheduler", "cycles", "speedup");
    println!("{:<10} {:>12} {:>8.1}%", "baseline", base.cycles, 0.0);
    println!(
        "{:<10} {:>12} {:>8.1}%",
        "redsoc",
        red.cycles,
        (red.speedup_over(&base) - 1.0) * 100.0
    );
    println!(
        "{:<10} {:>12} {:>8.1}%",
        "ts",
        ts.cycles,
        (ts.speedup - 1.0) * 100.0
    );
    println!(
        "{:<10} {:>12} {:>8.1}%",
        "mos",
        mos.cycles,
        (mos.speedup_over(&base) - 1.0) * 100.0
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let bench =
        parse_bench(args.first().ok_or_else(|| {
            usage_err("usage: redsoc sweep <bench> --knob <threshold|precision>")
        })?)?;
    let flags = Flags::parse(&args[1..], &["core", "knob", "len", "mem-model"])?;
    let core = with_mem_flag(parse_core(flags.get("core").unwrap_or("big"))?, &flags)?;
    let knob = flags.get("knob").unwrap_or("threshold");
    let len: u64 = flags.num("len", 60_000)?;
    let trace = bench.trace(len);
    let sim_err = |e: SimError| CliError::Sim(e.to_string());
    let base = simulate(trace.iter().copied(), core.clone()).map_err(sim_err)?;
    match knob {
        "threshold" => {
            println!("{:<10} {:>9}", "threshold", "speedup");
            for t in 0..=7u64 {
                let mut s = SchedulerConfig::redsoc();
                s.threshold_ticks = t;
                let rep =
                    simulate(trace.iter().copied(), core.clone().with_sched(s)).map_err(sim_err)?;
                println!("{t:<10} {:>8.1}%", (rep.speedup_over(&base) - 1.0) * 100.0);
            }
        }
        "precision" => {
            println!("{:<10} {:>9}", "ci_bits", "speedup");
            for bits in 1..=8u8 {
                let mut s = SchedulerConfig::redsoc();
                s.ci_bits = bits;
                s.threshold_ticks = (1 << bits) - 1;
                let rep =
                    simulate(trace.iter().copied(), core.clone().with_sched(s)).map_err(sim_err)?;
                println!(
                    "{bits:<10} {:>8.1}%",
                    (rep.speedup_over(&base) - 1.0) * 100.0
                );
            }
        }
        other => {
            return Err(usage_err(format!(
                "unknown knob {other:?} (accepted: --knob threshold|precision)"
            )))
        }
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let flags = Flags::parse(
        args,
        &[
            "threads",
            "len",
            "out",
            "journal",
            "resume",
            "job-timeout",
            "max-retries",
            "backoff-ms",
            "snapshot-interval",
            "mem-model",
            "isolation",
            "mem-limit-mb",
            "worker-recycle",
            "heartbeat-timeout-ms",
        ],
    )?;
    let threads = flags.num("threads", redsoc::bench::threads())?.max(1);
    let len: u64 = flags.num("len", redsoc::bench::trace_len())?;
    let out = flags.get("out").unwrap_or("BENCH_sweep.json");

    let mut sup = SupervisorConfig {
        faults: FaultPlan::from_env().map_err(|e| usage_err(format!("bad REDSOC_FAULT: {e}")))?,
        ..SupervisorConfig::default()
    };
    if let Some(t) = flags.get("job-timeout") {
        let cycles: u64 = t
            .parse()
            .map_err(|e| usage_err(format!("bad --job-timeout: {e}")))?;
        if cycles == 0 {
            return Err(usage_err("--job-timeout must be a positive cycle count"));
        }
        sup.job_timeout_cycles = Some(cycles);
    }
    sup.max_retries = flags.num("max-retries", sup.max_retries)?;
    sup.backoff_base = std::time::Duration::from_millis(flags.num("backoff-ms", 25u64)?);
    if let Some(v) = flags.get("snapshot-interval") {
        let cycles: u64 = v
            .parse()
            .map_err(|e| usage_err(format!("bad --snapshot-interval: {e}")))?;
        if cycles == 0 {
            return Err(usage_err(
                "--snapshot-interval must be a positive cycle count",
            ));
        }
        // Checkpoints live in the journal's sidecar directory; without a
        // journal there is nowhere to put them, and silently ignoring the
        // flag would defeat the crash-safety the caller asked for.
        if flags.get("journal").is_none() && flags.get("resume").is_none() {
            return Err(usage_err(
                "--snapshot-interval requires --journal or --resume \
                 (in-flight checkpoints are journaled)",
            ));
        }
        sup.snapshot_interval = Some(cycles);
    }

    let isolation = match flags.get("isolation").unwrap_or("thread") {
        "thread" => {
            for f in ["mem-limit-mb", "worker-recycle", "heartbeat-timeout-ms"] {
                if flags.get(f).is_some() {
                    return Err(usage_err(format!("--{f} requires --isolation process")));
                }
            }
            Isolation::Thread
        }
        "process" => {
            // Mid-job snapshots are journal writes made from inside the
            // attempt; a worker child has no journal handle, so honouring
            // the flag silently would drop the crash-safety it promises.
            if sup.snapshot_interval.is_some() {
                return Err(usage_err(
                    "--snapshot-interval is not supported with --isolation process \
                     (workers cannot write in-flight checkpoints; completed cells \
                     still journal normally)",
                ));
            }
            let exe = std::env::current_exe()
                .map_err(|e| CliError::Io(format!("cannot locate own binary: {e}")))?;
            let mut cfg = WorkerPoolConfig::new(exe);
            if flags.get("mem-limit-mb").is_some() {
                let mb: u64 = flags.num("mem-limit-mb", 0u64)?;
                if mb == 0 {
                    return Err(usage_err("--mem-limit-mb must be a positive MiB count"));
                }
                cfg.mem_limit_mb = Some(mb);
            }
            cfg.recycle_after = flags.num("worker-recycle", cfg.recycle_after)?;
            if cfg.recycle_after == 0 {
                return Err(usage_err("--worker-recycle must be a positive job count"));
            }
            let hb: u64 = flags.num(
                "heartbeat-timeout-ms",
                cfg.heartbeat_timeout.as_millis() as u64,
            )?;
            if hb == 0 {
                return Err(usage_err(
                    "--heartbeat-timeout-ms must be a positive duration",
                ));
            }
            cfg.heartbeat_timeout = std::time::Duration::from_millis(hb);
            Isolation::Process(cfg)
        }
        other => {
            return Err(usage_err(format!(
                "unknown isolation {other:?} (accepted: --isolation thread|process)"
            )))
        }
    };

    let mut journal = match (flags.get("resume"), flags.get("journal")) {
        (Some(_), Some(_)) => {
            return Err(usage_err(
                "--resume and --journal are exclusive: --resume reopens an \
                 existing journal, --journal starts a fresh one",
            ))
        }
        (Some(path), None) => Some(
            Journal::resume(path)
                .map_err(|e| CliError::Io(format!("cannot resume {path}: {e}")))?,
        ),
        (None, Some(path)) => Some(Journal::create(path).map_err(|e| {
            // A journal that cannot even be created is an invocation
            // problem, not a mid-sweep I/O failure: fail fast (exit 2)
            // with the likely fix, before any simulation time is spent.
            usage_err(format!(
                "cannot create journal {path}: {e}\n\
                 hint: the journal's parent directory must already exist and be \
                 writable (mkdir -p it first, or point --journal at a writable path)"
            ))
        })?),
        (None, None) => None,
    };
    // Crash-injection hook for the resume tests: die (exit 86) after the
    // nth checkpoint lands, as an uncontrolled kill would.
    if let Some(j) = journal.as_mut() {
        if let Some(n) = std::env::var("REDSOC_DIE_AFTER_JOBS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            j.set_die_after(Some(n));
        }
        let restored = j.restored().len();
        if restored > 0 {
            println!(
                "resuming from {}: {restored} cell(s) checkpointed",
                j.path().display()
            );
        }
    }

    // The grid's memory-model axis: one flag retargets every core in the
    // sweep, so `--mem-model contended` produces a sweep document directly
    // comparable (via sweepcmp) against the classic default.
    let mut cores = redsoc::bench::cores();
    if let Some(s) = flags.get("mem-model") {
        let model = parse_mem_model(s)?;
        for (_, core) in &mut cores {
            *core = core.clone().with_mem_model(model);
        }
    }

    let cache = redsoc::bench::TraceCache::new(len);
    let grid = run_grid_isolated(
        &cache,
        &Benchmark::all(),
        &cores,
        &Mode::all(),
        threads,
        &sup,
        journal.as_ref(),
        &isolation,
    );
    // Tail-window safety: fsync the journal before the sweep document is
    // written, so a kill between "last job done" and "sweep JSON on disk"
    // can never lose checkpoints that the (now missing) document would
    // have superseded — resume re-reads them and re-runs nothing.
    if let Some(j) = journal.as_ref() {
        j.sync_to_disk()
            .map_err(|e| CliError::Io(format!("cannot sync journal: {e}")))?;
    }
    let doc = sweep_json(&grid, len);
    std::fs::write(out, doc.pretty())
        .map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    println!(
        "{} jobs ({} benchmarks x 3 cores x {} modes) on {threads} thread(s)",
        grid.cells().len(),
        Benchmark::all().len(),
        Mode::all().len(),
    );
    println!(
        "wall {:.2}s, cpu {:.2}s ({:.2}x parallel efficiency)",
        grid.wall.as_secs_f64(),
        grid.cpu_time().as_secs_f64(),
        grid.cpu_time().as_secs_f64() / grid.wall.as_secs_f64().max(1e-9)
    );
    let counts = grid.status_counts();
    println!(
        "status: {}",
        counts
            .iter()
            .map(|(s, n)| format!("{} {n}", s.label()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("wrote {out}");
    if grid.fully_ok() {
        Ok(())
    } else {
        let failed: Vec<String> = grid
            .cells()
            .iter()
            .filter(|c| !c.is_ok())
            .map(|c| format!("{} ({})", c.job.key(), c.status.label()))
            .collect();
        Err(CliError::Partial(format!(
            "sweep completed with {} failed cell(s): {}",
            failed.len(),
            failed.join(", ")
        )))
    }
}

/// Seeded xorshift64: the chaos harness's only randomness source, so a
/// given `--seed` replays the same kill schedule.
fn xorshift64(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

/// Chaos kill-loop: prove the snapshot/journal/resume path end to end by
/// repeatedly SIGKILLing a real child sweep mid-job and resuming it, then
/// comparing the final sweep document against an uninterrupted in-process
/// reference. Kill points are driven by `--seed` through the journal's
/// observable growth (a new line means a cell completed *or* an in-flight
/// checkpoint landed — the latter puts the kill squarely inside a job).
fn cmd_chaos(args: &[String]) -> CliResult {
    use redsoc::bench::json::Json;
    let flags = Flags::parse(
        args,
        &[
            "threads",
            "len",
            "kills",
            "seed",
            "snapshot-interval",
            "dir",
            "worker-kills",
        ],
    )?;
    let threads: usize = flags.num("threads", redsoc::bench::threads())?.max(1);
    let len: u64 = flags.num("len", 20_000)?;
    let kills: u64 = flags.num("kills", 5u64)?;
    if kills == 0 {
        return Err(usage_err("--kills must be a positive kill count"));
    }
    let seed: u64 = flags.num("seed", 0u64)?;
    let interval: u64 = flags.num("snapshot-interval", 4096u64)?;
    if interval == 0 {
        return Err(usage_err(
            "--snapshot-interval must be a positive cycle count",
        ));
    }
    let keep_dir = flags.get("dir").is_some();
    let dir = match flags.get("dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("redsoc-chaos-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir)
        .map_err(|e| CliError::Io(format!("cannot create {}: {e}", dir.display())))?;

    // The uninterrupted reference, in-process: what the chaotic run must
    // reproduce byte-identically after canonicalisation.
    println!("chaos: reference sweep (len {len}, {threads} thread(s), no interruptions)");
    let cache = redsoc::bench::TraceCache::new(len);
    let grid = run_grid_supervised(
        &cache,
        &Benchmark::all(),
        &redsoc::bench::cores(),
        &Mode::all(),
        threads,
        &SupervisorConfig::default(),
        None,
    );
    if !grid.fully_ok() {
        return Err(CliError::Sim(
            "reference sweep has failed cells; a chaos comparison would be meaningless".into(),
        ));
    }
    let reference = canonicalize_sweep(&sweep_json(&grid, len));
    let reference_path = dir.join("reference.json");
    std::fs::write(&reference_path, sweep_json(&grid, len).pretty())
        .map_err(|e| CliError::Io(format!("cannot write {}: {e}", reference_path.display())))?;

    let exe = std::env::current_exe()
        .map_err(|e| CliError::Io(format!("cannot locate own binary: {e}")))?;

    // Worker-kill storm: instead of killing the whole child sweep, run it
    // under process isolation and SIGKILL/SIGABRT its *workers* while it
    // runs. The sweep itself must survive every storm hit (exit 0) —
    // killed attempts retry onto fresh workers — and still reproduce the
    // thread-isolation reference exactly. This proves both containment
    // and thread/process result equivalence in one check.
    let worker_kills: u64 = flags.num("worker-kills", 0u64)?;
    if worker_kills > 0 {
        let journal = dir.join("chaos-workers.jnl");
        let out = dir.join("chaos-workers.json");
        std::fs::remove_file(&journal).ok();
        let mut child = {
            let mut c = std::process::Command::new(&exe);
            c.arg("bench")
                .args(["--threads", &threads.to_string()])
                .args(["--len", &len.to_string()])
                .args(["--isolation", "process"])
                // Deep retry budget: every storm hit must be absorbable.
                .args(["--max-retries", "8"])
                .args(["--backoff-ms", "10"])
                .arg("--journal")
                .arg(&journal)
                .arg("--out")
                .arg(&out)
                .env_remove("REDSOC_FAULT")
                .env_remove("REDSOC_DIE_AFTER_JOBS")
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null());
            c.spawn()
                .map_err(|e| CliError::Io(format!("cannot spawn child sweep: {e}")))?
        };
        let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
        if rng == 0 {
            rng = 0x2545_F491_4F6C_DD1D;
        }
        let mut performed = 0u64;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
        while performed < worker_kills {
            if let Some(status) = child
                .try_wait()
                .map_err(|e| CliError::Io(format!("cannot poll child sweep: {e}")))?
            {
                return Err(CliError::Io(format!(
                    "child sweep completed ({status}) after only {performed} of \
                     {worker_kills} worker kill(s); use a longer --len or fewer kills"
                )));
            }
            if std::time::Instant::now() > deadline {
                child.kill().ok();
                child.wait().ok();
                return Err(CliError::Io(
                    "could not land the requested worker kills within 300s".into(),
                ));
            }
            let workers = redsoc::bench::pool::worker_children_of(child.id());
            if workers.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(5));
                continue;
            }
            let victim = workers[(xorshift64(&mut rng) as usize) % workers.len()];
            // Alternate SIGKILL (no cleanup at all) and SIGABRT (the
            // failure path a real crash takes) by seeded coin flip.
            let signal = if xorshift64(&mut rng) & 1 == 0 { 9 } else { 6 };
            if redsoc::bench::pool::kill_pid(victim, signal) {
                performed += 1;
                println!(
                    "chaos: worker kill {performed}/{worker_kills} \
                     (pid {victim}, signal {signal})"
                );
            }
            std::thread::sleep(std::time::Duration::from_millis(
                10 + (xorshift64(&mut rng) % 40),
            ));
        }
        let status = child
            .wait()
            .map_err(|e| CliError::Io(format!("cannot wait for child sweep: {e}")))?;
        if !status.success() {
            return Err(CliError::Io(format!(
                "process-isolated sweep did not absorb the worker kills ({status}); \
                 artifacts kept in {}",
                dir.display()
            )));
        }
        let text = std::fs::read_to_string(&out)
            .map_err(|e| CliError::Io(format!("cannot read {}: {e}", out.display())))?;
        let doc = Json::parse(&text)
            .map_err(|e| CliError::Io(format!("storm sweep output is not valid JSON: {e}")))?;
        if canonicalize_sweep(&doc) == reference {
            println!(
                "chaos: survived {worker_kills} worker kill(s); process-isolated sweep is \
                 identical to the uninterrupted thread-isolation reference after \
                 canonicalisation"
            );
            if !keep_dir {
                std::fs::remove_dir_all(&dir).ok();
            }
            return Ok(());
        }
        return Err(CliError::Io(format!(
            "storm sweep differs from the uninterrupted reference; artifacts kept in {} \
             (compare with: redsoc sweepcmp {} {})",
            dir.display(),
            reference_path.display(),
            out.display()
        )));
    }

    let journal = dir.join("chaos.jnl");
    let out = dir.join("chaos.json");
    std::fs::remove_file(&journal).ok();
    let spawn = |resume: bool| -> Result<std::process::Child, CliError> {
        let mut c = std::process::Command::new(&exe);
        c.arg("bench")
            .args(["--threads", &threads.to_string()])
            .args(["--len", &len.to_string()])
            .args(["--snapshot-interval", &interval.to_string()])
            .arg("--out")
            .arg(&out)
            .arg(if resume { "--resume" } else { "--journal" })
            .arg(&journal)
            // The children must run clean: the chaos harness *is* the
            // fault injector here.
            .env_remove("REDSOC_FAULT")
            .env_remove("REDSOC_DIE_AFTER_JOBS")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        c.spawn()
            .map_err(|e| CliError::Io(format!("cannot spawn child sweep: {e}")))
    };
    let journal_lines = || std::fs::read_to_string(&journal).map_or(0, |t| t.lines().count());

    let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
    if rng == 0 {
        rng = 0x2545_F491_4F6C_DD1D;
    }
    let mut performed = 0u64;
    while performed < kills {
        let mut child = spawn(performed > 0)?;
        // Kill after the journal gains 1–2 more lines: right on the heels
        // of a record or checkpoint landing, i.e. mid-sweep and (once
        // checkpoints flow) mid-job.
        let target = journal_lines() + 1 + (xorshift64(&mut rng) as usize & 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        loop {
            if let Some(status) = child
                .try_wait()
                .map_err(|e| CliError::Io(format!("cannot poll child sweep: {e}")))?
            {
                return Err(CliError::Io(format!(
                    "child sweep completed ({status}) after only {performed} of {kills} \
                     kill(s); use a longer --len or fewer --kills"
                )));
            }
            if journal_lines() >= target {
                child.kill().ok();
                child.wait().ok();
                performed += 1;
                println!(
                    "chaos: kill {performed}/{kills} at {} journal line(s)",
                    journal_lines()
                );
                break;
            }
            if std::time::Instant::now() > deadline {
                child.kill().ok();
                child.wait().ok();
                return Err(CliError::Io(
                    "child sweep made no journal progress within 120s".into(),
                ));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    // Final, uninterrupted resume: must finish everything that survived
    // the kills.
    println!("chaos: final resume to completion");
    let status = spawn(true)?
        .wait()
        .map_err(|e| CliError::Io(format!("cannot wait for final resume: {e}")))?;
    if !status.success() {
        return Err(CliError::Io(format!(
            "final resume run failed ({status}); artifacts kept in {}",
            dir.display()
        )));
    }

    let text = std::fs::read_to_string(&out)
        .map_err(|e| CliError::Io(format!("cannot read {}: {e}", out.display())))?;
    let doc = Json::parse(&text)
        .map_err(|e| CliError::Io(format!("chaotic sweep output is not valid JSON: {e}")))?;
    if canonicalize_sweep(&doc) == reference {
        println!(
            "chaos: survived {kills} mid-sweep kill(s); resumed sweep is identical to the \
             uninterrupted reference after canonicalisation"
        );
        if !keep_dir {
            std::fs::remove_dir_all(&dir).ok();
        }
        Ok(())
    } else {
        Err(CliError::Io(format!(
            "resumed sweep differs from the uninterrupted reference; \
             artifacts kept in {} (compare with: redsoc sweepcmp {} {})",
            dir.display(),
            reference_path.display(),
            out.display()
        )))
    }
}

/// The child half of `bench --isolation process`: speak the frame
/// protocol on stdin/stdout until the parent shuts us down. Spawned by
/// the worker pool, not by operators — but runnable by hand for
/// debugging (feed it frames, watch replies).
fn cmd_worker(args: &[String]) -> CliResult {
    use redsoc::bench::worker::{run_worker, WorkerOptions};
    let flags = Flags::parse(args, &["mem-limit-mb", "heartbeat-ms"])?;
    let mem_limit_mb = match flags.get("mem-limit-mb") {
        Some(_) => {
            let mb: u64 = flags.num("mem-limit-mb", 0u64)?;
            if mb == 0 {
                return Err(usage_err("--mem-limit-mb must be a positive MiB count"));
            }
            Some(mb)
        }
        None => None,
    };
    let heartbeat_ms: u64 = flags.num("heartbeat-ms", 250u64)?;
    if heartbeat_ms == 0 {
        return Err(usage_err("--heartbeat-ms must be a positive duration"));
    }
    run_worker(&WorkerOptions {
        mem_limit_mb,
        heartbeat_ms,
    })
    .map_err(CliError::Io)
}

fn cmd_sweepcmp(args: &[String]) -> CliResult {
    use redsoc::bench::json::Json;
    let [a, b] = args else {
        return Err(usage_err("usage: redsoc sweepcmp <a.json> <b.json>"));
    };
    let load = |path: &String| -> Result<Json, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
        // A non-JSON argument is the caller handing us the wrong file —
        // a usage error (exit 2), not an I/O failure.
        let doc = Json::parse(&text)
            .map_err(|e| usage_err(format!("{path}: not valid sweep JSON: {e}")))?;
        Ok(canonicalize_sweep(&doc))
    };
    let (da, db) = (load(a)?, load(b)?);
    if da == db {
        println!(
            "sweeps match after canonicalisation (wall-clock, thread-count, and \
             retry-provenance fields ignored)"
        );
        Ok(())
    } else {
        // Point at the first differing job row to make mismatches
        // debuggable without external tooling.
        let ja = da.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
        let jb = db.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
        let mut detail = format!("{} has {} jobs, {} has {}", a, ja.len(), b, jb.len());
        for (i, (ra, rb)) in ja.iter().zip(jb.iter()).enumerate() {
            if ra != rb {
                detail = format!("first differing job row is #{i}:\n  {a}: {ra:?}\n  {b}: {rb:?}");
                break;
            }
        }
        Err(CliError::Io(format!("sweeps differ: {detail}")))
    }
}

/// Perf-regression gate: compare a fresh sweep's runtime against the
/// committed `BENCH_sweep.json` baseline.
///
/// The gated metric is the sweep's `cpu_seconds` (the sum of per-job
/// runtimes): unlike the top-level `wall_seconds` it does not shrink as
/// `--threads` grows, so the comparison is stable across worker counts
/// — as long as workers do not exceed physical cores, which would
/// timeshare jobs and inflate their measured runtimes. The baseline is
/// captured at `--threads 1` for that reason; compare against sweeps
/// run with `--threads` ≤ the machine's core count. The gate fails
/// (exit 1) when the fresh sweep is more than `--tolerance` percent
/// slower than the baseline (default 15%, per the project's perf
/// budget).
///
/// Updating the baseline after an *intentional* perf change:
///
/// ```text
/// cargo build --release
/// ./target/release/redsoc bench --threads 1 --len 2000 --out BENCH_sweep.json
/// git add BENCH_sweep.json   # commit alongside the change that moved it
/// ```
///
/// The committed numbers are machine-specific; refresh the baseline on
/// the reference machine (or raise `--tolerance` in CI) when the
/// hardware changes.
fn cmd_perfgate(args: &[String]) -> CliResult {
    use redsoc::bench::json::Json;
    let (paths, rest) = args.split_at(args.len().min(2));
    let [baseline_path, fresh_path] = paths else {
        return Err(usage_err(
            "usage: redsoc perfgate <baseline.json> <fresh.json> [--tolerance PCT]",
        ));
    };
    let flags = Flags::parse(rest, &["tolerance"])?;
    let tolerance: f64 = flags.num("tolerance", 15.0)?;
    if !(0.0..=1000.0).contains(&tolerance) {
        return Err(usage_err("--tolerance must be a percentage in 0..=1000"));
    }

    let load = |path: &String| -> Result<Json, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
        Json::parse(&text).map_err(|e| usage_err(format!("{path}: not valid sweep JSON: {e}")))
    };
    let num = |doc: &Json, path: &str, key: &str| -> Result<f64, CliError> {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| usage_err(format!("{path}: missing numeric {key:?} field")))
    };
    let (base, fresh) = (load(baseline_path)?, load(fresh_path)?);

    // The gate only makes sense over the same grid: a different trace
    // length or job count is the caller comparing the wrong sweeps.
    let (b_len, f_len) = (
        num(&base, baseline_path, "trace_len")?,
        num(&fresh, fresh_path, "trace_len")?,
    );
    if b_len != f_len {
        return Err(usage_err(format!(
            "trace_len differs ({b_len} vs {f_len}): sweeps are not comparable"
        )));
    }
    let jobs = |doc: &Json| doc.get("jobs").and_then(Json::as_arr).map_or(0, <[_]>::len);
    if jobs(&base) != jobs(&fresh) {
        return Err(usage_err(format!(
            "job count differs ({} vs {}): sweeps are not comparable",
            jobs(&base),
            jobs(&fresh)
        )));
    }

    let b_cpu = num(&base, baseline_path, "cpu_seconds")?;
    let f_cpu = num(&fresh, fresh_path, "cpu_seconds")?;
    if b_cpu <= 0.0 {
        return Err(usage_err(format!(
            "{baseline_path}: baseline cpu_seconds must be positive"
        )));
    }
    let ratio = f_cpu / b_cpu;
    println!(
        "perfgate: baseline {b_cpu:.2}s cpu, fresh {f_cpu:.2}s cpu ({ratio:.3}x, tolerance +{tolerance:.0}%)"
    );

    // Per-job wall times make a sweep-level regression debuggable: show
    // the worst cells so the offending (benchmark, core, mode) is in
    // the gate output, not just the total.
    let cell_times = |doc: &Json| -> Vec<(String, f64)> {
        doc.get("jobs")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|j| {
                let key = format!(
                    "{}/{}/{}",
                    j.get("benchmark").and_then(Json::as_str)?,
                    j.get("core").and_then(Json::as_str)?,
                    j.get("mode").and_then(Json::as_str)?
                );
                Some((key, j.get("wall_seconds").and_then(Json::as_num)?))
            })
            .collect()
    };
    let base_cells = cell_times(&base);
    let mut worst: Vec<(String, f64, f64)> = cell_times(&fresh)
        .into_iter()
        .filter_map(|(key, f_s)| {
            let (_, b_s) = base_cells.iter().find(|(k, _)| *k == key)?;
            (*b_s > 1e-9).then_some((key, *b_s, f_s))
        })
        .collect();
    worst.sort_by(|a, b| {
        (b.2 / b.1)
            .partial_cmp(&(a.2 / a.1))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (key, b_s, f_s) in worst.iter().take(3) {
        println!(
            "  slowest-moving cell: {key}  {b_s:.3}s -> {f_s:.3}s ({:.2}x)",
            f_s / b_s
        );
    }

    if ratio > 1.0 + tolerance / 100.0 {
        Err(CliError::Io(format!(
            "perf regression: fresh sweep is {:.1}% slower than the committed baseline \
             (gate: +{tolerance:.0}%).\n\
             If this slowdown is intentional, refresh the baseline and commit it:\n\
             \x20 cargo build --release\n\
             \x20 ./target/release/redsoc bench --threads 1 --len 2000 --out BENCH_sweep.json",
            (ratio - 1.0) * 100.0
        )))
    } else {
        println!("perfgate: OK");
        Ok(())
    }
}

fn cmd_fuzz(args: &[String]) -> CliResult {
    use redsoc::verify::oracle::SchedKind;
    use redsoc::verify::{run_fuzz, FuzzConfig};
    let flags = Flags::parse(
        args,
        &[
            "seed",
            "cases",
            "max-instrs",
            "schedulers",
            "repro-dir",
            "sabotage",
            "mem-model",
        ],
    )?;
    let mut cfg = FuzzConfig::new(flags.num("seed", 0u64)?, flags.num("cases", 500u64)?);
    if cfg.cases == 0 {
        return Err(usage_err("--cases must be positive"));
    }
    cfg.max_instrs = flags.num("max-instrs", 48usize)?;
    if cfg.max_instrs == 0 {
        return Err(usage_err("--max-instrs must be positive"));
    }
    if let Some(list) = flags.get("schedulers") {
        let mut scheds = Vec::new();
        for item in list.split(',') {
            let kind = SchedKind::parse(item.trim()).ok_or_else(|| {
                usage_err(format!(
                    "unknown scheduler {item:?} (accepted: baseline,redsoc,mos,ts)"
                ))
            })?;
            if !scheds.contains(&kind) {
                scheds.push(kind);
            }
        }
        if scheds.is_empty() {
            return Err(usage_err("--schedulers needs at least one policy"));
        }
        cfg.scheds = scheds;
    }
    if let Some(s) = flags.get("mem-model") {
        cfg.mem_models =
            redsoc::verify::MemModelAxis::parse(&s.to_ascii_lowercase()).ok_or_else(|| {
                usage_err(format!(
                    "unknown memory model {s:?} (classic|contended|both)"
                ))
            })?;
    }
    cfg.repro_dir = flags.get("repro-dir").map(std::path::PathBuf::from);
    // Undocumented self-test knob: plant the inverted-skew fault so the
    // harness's own detection path can be demonstrated end to end.
    match flags.get("sabotage") {
        None | Some("none") => {}
        Some("invert-skew") => cfg.sabotage_redsoc = true,
        Some(other) => {
            return Err(usage_err(format!(
                "unknown sabotage {other:?} (accepted: none|invert-skew)"
            )))
        }
    }
    let sched_names: Vec<&str> = cfg.scheds.iter().map(|k| k.label()).collect();
    println!(
        "fuzz: seed {} cases {} max-instrs {} schedulers {} mem-model {}",
        cfg.seed,
        cfg.cases,
        cfg.max_instrs,
        sched_names.join(","),
        cfg.mem_models.label()
    );
    let summary = run_fuzz(&cfg, |line| {
        // One line per diverging case only: a 500-case clean run stays
        // readable and byte-stable.
        if line.contains("DIVERGED") || line.contains("shrunk") {
            println!("{line}");
        }
    })
    .map_err(|e| CliError::Io(format!("repro emission failed: {e}")))?;
    println!(
        "checked {} case(s), {} dynamic instructions: {} divergence(s)",
        summary.cases_run,
        summary.dyn_ops,
        summary.failures.len()
    );
    for f in &summary.failures {
        println!(
            "  case {} (core {}, mem {}, {} instrs shrunk): {}",
            f.case,
            f.core,
            f.mem_model,
            f.shrunk.op_count(),
            f.divergence
        );
        if let Some(p) = &f.repro_path {
            println!("    repro: {}", p.display());
        }
    }
    if summary.failures.is_empty() {
        Ok(())
    } else {
        Err(CliError::Sim(format!(
            "{} of {} case(s) diverged",
            summary.failures.len(),
            summary.cases_run
        )))
    }
}

fn usage() -> String {
    "usage: redsoc <command>\n\
     \n\
     commands:\n\
     \x20 list                     list available benchmarks\n\
     \x20 run <bench> [flags]      simulate one benchmark\n\
     \x20                          (--events FILE streams the pipeline event log as JSONL)\n\
     \x20 trace <bench> [flags]    dump the pipeline event log\n\
     \x20                          (--format chrome|jsonl  --out FILE;\n\
     \x20                          chrome output loads in chrome://tracing)\n\
     \x20 compare <bench> [flags]  baseline vs ReDSOC vs TS vs MOS\n\
     \x20 sweep <bench> [flags]    design-knob sweep (--knob threshold|precision)\n\
     \x20 bench [flags]            full parallel sweep -> machine-readable JSON\n\
     \x20                          (--threads N  --len N  --out FILE\n\
     \x20                          --journal FILE   checkpoint cells as they finish\n\
     \x20                          --resume FILE    reopen a journal, skip done cells\n\
     \x20                          --job-timeout N  per-job cycle budget\n\
     \x20                          --max-retries N  retries for transient failures\n\
     \x20                          --backoff-ms N   retry backoff base\n\
     \x20                          --snapshot-interval N  checkpoint in-flight jobs every\n\
     \x20                          N cycles into the journal (needs --journal/--resume)\n\
     \x20                          --isolation thread|process  run each cell in-thread\n\
     \x20                          (default) or in supervised worker child processes;\n\
     \x20                          with process: --mem-limit-mb N  per-worker RLIMIT_AS,\n\
     \x20                          --worker-recycle N  retire workers after N jobs,\n\
     \x20                          --heartbeat-timeout-ms N  kill silent workers)\n\
     \x20 worker [flags]           internal: one pool worker child (spawned by\n\
     \x20                          bench --isolation process; speaks frames on stdio)\n\
     \x20 chaos [flags]            crash-safety proof: SIGKILL a child sweep mid-job\n\
     \x20                          --kills times (default 5), resume each time, and\n\
     \x20                          require the final sweep to match an uninterrupted\n\
     \x20                          reference (--seed N  --len N  --threads N\n\
     \x20                          --snapshot-interval N  --dir DIR keeps artifacts;\n\
     \x20                          --worker-kills N  storm mode: SIGKILL/SIGABRT the\n\
     \x20                          workers of a process-isolated sweep instead — the\n\
     \x20                          sweep must absorb every kill and still match)\n\
     \x20 sweepcmp <a> <b>         compare two sweep JSONs, ignoring wall-clock and thread count\n\
     \x20 perfgate <base> <fresh>  perf-regression gate: fail if <fresh> is more than\n\
     \x20                          --tolerance percent (default 15) slower in cpu_seconds\n\
     \x20                          than the committed baseline sweep\n\
     \x20 fuzz [flags]             differential fuzzing: random programs through the\n\
     \x20                          interpreter and every scheduler in lockstep\n\
     \x20                          (--seed N  --cases N  --max-instrs N\n\
     \x20                          --schedulers baseline,redsoc,mos,ts\n\
     \x20                          --mem-model classic|contended|both (default both)\n\
     \x20                          --repro-dir DIR   write shrunk .asm repros)\n\
     \n\
     flags: --core small|medium|big  --sched baseline|redsoc|mos  --len N\n\
     \x20      --mem-model classic|contended  (memory hierarchy: fixed-latency\n\
     \x20      vs MSHR/port/DRAM-bandwidth-limited; run, trace, compare, sweep, bench)\n\
     exit codes: 0 ok, 1 io/mismatch, 2 usage, 3 simulator error, 4 partial sweep"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("sweepcmp") => cmd_sweepcmp(&args[1..]),
        Some("perfgate") => cmd_perfgate(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        _ => Err(CliError::Usage(usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{}", e.message());
            e.code()
        }
    }
}
