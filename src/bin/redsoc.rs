//! `redsoc` — command-line driver for the simulator.
//!
//! ```sh
//! redsoc list
//! redsoc run bitcnt --core big --sched redsoc --len 200000
//! redsoc run bitcnt --events bitcnt.jsonl
//! redsoc trace conv --format chrome --out conv_trace.json
//! redsoc compare crc --core medium
//! redsoc sweep bzip2 --knob threshold
//! redsoc bench --threads 8 --len 300000 --out BENCH_sweep.json
//! ```

use std::process::ExitCode;

use redsoc::bench::runner::{run_full_sweep, sweep_json, Mode};
use redsoc::core::ts::run_ts;
use redsoc::prelude::*;

fn parse_core(s: &str) -> Result<CoreConfig, String> {
    match s.to_ascii_lowercase().as_str() {
        "small" => Ok(CoreConfig::small()),
        "medium" => Ok(CoreConfig::medium()),
        "big" => Ok(CoreConfig::big()),
        other => Err(format!("unknown core {other:?} (small|medium|big)")),
    }
}

fn parse_sched(s: &str) -> Result<SchedulerConfig, String> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" => Ok(SchedulerConfig::baseline()),
        "redsoc" => Ok(SchedulerConfig::redsoc()),
        "mos" => Ok(SchedulerConfig::mos()),
        other => Err(format!("unknown scheduler {other:?} (baseline|redsoc|mos)")),
    }
}

fn parse_bench(s: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            let names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
            format!("unknown benchmark {s:?}; available: {names:?}")
        })
}

/// Minimal flag parser: `--key value` pairs after the positional args.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let Some(v) = it.next() else {
                return Err(format!("flag --{key} needs a value"));
            };
            pairs.push((key.to_string(), v.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn print_stalls(rep: &SimReport) {
    println!("stall attribution ({} cycles):", rep.cycles);
    for cause in StallCause::all() {
        let n = rep.stalls.count(cause);
        if n > 0 {
            println!(
                "  {:<14} {:>12}  ({:>5.1}%)",
                cause.label(),
                n,
                n as f64 / rep.cycles as f64 * 100.0
            );
        }
    }
}

fn print_report(label: &str, rep: &SimReport) {
    println!("--- {label} ---");
    println!("cycles        {:>12}", rep.cycles);
    println!("committed     {:>12}", rep.committed);
    println!("IPC           {:>12.3}", rep.ipc());
    println!("recycled ops  {:>12}", rep.recycled_ops);
    println!(
        "EGPW issues   {:>12}  (wasted {})",
        rep.egpw_issues, rep.egpw_wasted
    );
    println!("2-cycle holds {:>12}", rep.two_cycle_holds);
    println!(
        "E[chain len]  {:>12.2}  ({} sequences)",
        rep.chains.weighted_mean(),
        rep.chains.sequences()
    );
    println!("FU stalls     {:>11.1}%", rep.fu_stall_rate() * 100.0);
    println!(
        "br mispredict {:>11.2}%",
        rep.branch.mispredict_rate() * 100.0
    );
    println!(
        "tag mispredict{:>11.2}%  ({} predictions)",
        rep.tag_pred.mispredict_rate() * 100.0,
        rep.tag_pred.predictions
    );
    println!(
        "width mispred {:>11.2}% aggressive / {:.2}% conservative",
        rep.width_pred.aggressive_rate() * 100.0,
        rep.width_pred.conservative_rate() * 100.0
    );
}

fn cmd_list() -> Result<(), String> {
    println!("{:<12} {:<8}", "benchmark", "class");
    for b in Benchmark::all() {
        println!("{:<12} {:<8}", b.name(), b.class().label());
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let bench = parse_bench(args.first().ok_or("usage: redsoc run <bench> [flags]")?)?;
    let flags = Flags::parse(&args[1..])?;
    let core = parse_core(flags.get("core").unwrap_or("big"))?;
    let sched = parse_sched(flags.get("sched").unwrap_or("redsoc"))?;
    let len: u64 = flags
        .get("len")
        .unwrap_or("100000")
        .parse()
        .map_err(|e| format!("bad --len: {e}"))?;
    let trace = bench.trace(len);
    let cfg = core.clone().with_sched(sched.clone());
    let rep = match flags.get("events") {
        Some(path) => {
            // Stream the full event log as JSONL while simulating.
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            let rep =
                simulate_events(trace.into_iter(), cfg, &mut sink).map_err(|e| e.to_string())?;
            let lines = sink.lines();
            sink.finish();
            println!("wrote {lines} events to {path}");
            rep
        }
        None => {
            // A bounded ring costs almost nothing and gives the deadlock
            // watchdog a pipeline dump to attach to its error.
            let mut ring = RingSink::new(RingSink::DEFAULT_CAP);
            simulate_events(trace.into_iter(), cfg, &mut ring).map_err(|e| e.to_string())?
        }
    };
    print_report(
        &format!("{} on {} ({:?})", bench.name(), core.name, sched.mode),
        &rep,
    );
    print_stalls(&rep);
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let bench = parse_bench(args.first().ok_or("usage: redsoc trace <bench> [flags]")?)?;
    let flags = Flags::parse(&args[1..])?;
    let core = parse_core(flags.get("core").unwrap_or("big"))?;
    let sched = parse_sched(flags.get("sched").unwrap_or("redsoc"))?;
    let len: u64 = flags
        .get("len")
        .unwrap_or("20000")
        .parse()
        .map_err(|e| format!("bad --len: {e}"))?;
    let format = flags.get("format").unwrap_or("chrome");
    let trace = bench.trace(len);
    let cfg = core.clone().with_sched(sched.clone());
    match format {
        "chrome" => {
            let out = flags.get("out").unwrap_or("trace.json");
            let mut sink = ChromeTraceSink::new(sched.quant().ticks_per_cycle());
            let rep =
                simulate_events(trace.into_iter(), cfg, &mut sink).map_err(|e| e.to_string())?;
            std::fs::write(out, sink.finish()).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "{} on {} ({:?}): {} cycles, {} committed",
                bench.name(),
                core.name,
                sched.mode,
                rep.cycles,
                rep.committed
            );
            println!(
                "wrote {} trace rows to {out} (load in chrome://tracing or ui.perfetto.dev)",
                sink.rows()
            );
        }
        "jsonl" => {
            let out = flags.get("out").unwrap_or("trace.jsonl");
            let file =
                std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            let rep =
                simulate_events(trace.into_iter(), cfg, &mut sink).map_err(|e| e.to_string())?;
            let lines = sink.lines();
            sink.finish();
            println!(
                "{} on {} ({:?}): {} cycles, {} committed",
                bench.name(),
                core.name,
                sched.mode,
                rep.cycles,
                rep.committed
            );
            println!("wrote {lines} events to {out}");
        }
        other => return Err(format!("unknown format {other:?} (chrome|jsonl)")),
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let bench = parse_bench(
        args.first()
            .ok_or("usage: redsoc compare <bench> [flags]")?,
    )?;
    let flags = Flags::parse(&args[1..])?;
    let core = parse_core(flags.get("core").unwrap_or("big"))?;
    let len: u64 = flags
        .get("len")
        .unwrap_or("100000")
        .parse()
        .map_err(|e| format!("bad --len: {e}"))?;
    let trace = bench.trace(len);
    let base = simulate(trace.iter().copied(), core.clone()).map_err(|e| e.to_string())?;
    let red = simulate(
        trace.iter().copied(),
        core.clone().with_sched(SchedulerConfig::redsoc()),
    )
    .map_err(|e| e.to_string())?;
    let mos = simulate(
        trace.iter().copied(),
        core.clone().with_sched(SchedulerConfig::mos()),
    )
    .map_err(|e| e.to_string())?;
    let ts = run_ts(&trace, &core, base.cycles, 0.01).map_err(|e| e.to_string())?;
    println!(
        "{} on {} ({} instructions)",
        bench.name(),
        core.name,
        trace.len()
    );
    println!("{:<10} {:>12} {:>9}", "scheduler", "cycles", "speedup");
    println!("{:<10} {:>12} {:>8.1}%", "baseline", base.cycles, 0.0);
    println!(
        "{:<10} {:>12} {:>8.1}%",
        "redsoc",
        red.cycles,
        (red.speedup_over(&base) - 1.0) * 100.0
    );
    println!(
        "{:<10} {:>12} {:>8.1}%",
        "ts",
        ts.cycles,
        (ts.speedup - 1.0) * 100.0
    );
    println!(
        "{:<10} {:>12} {:>8.1}%",
        "mos",
        mos.cycles,
        (mos.speedup_over(&base) - 1.0) * 100.0
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let bench = parse_bench(
        args.first()
            .ok_or("usage: redsoc sweep <bench> --knob <threshold|precision>")?,
    )?;
    let flags = Flags::parse(&args[1..])?;
    let core = parse_core(flags.get("core").unwrap_or("big"))?;
    let knob = flags.get("knob").unwrap_or("threshold");
    let len: u64 = flags
        .get("len")
        .unwrap_or("60000")
        .parse()
        .map_err(|e| format!("bad --len: {e}"))?;
    let trace = bench.trace(len);
    let base = simulate(trace.iter().copied(), core.clone()).map_err(|e| e.to_string())?;
    match knob {
        "threshold" => {
            println!("{:<10} {:>9}", "threshold", "speedup");
            for t in 0..=7u64 {
                let mut s = SchedulerConfig::redsoc();
                s.threshold_ticks = t;
                let rep = simulate(trace.iter().copied(), core.clone().with_sched(s))
                    .map_err(|e| e.to_string())?;
                println!("{t:<10} {:>8.1}%", (rep.speedup_over(&base) - 1.0) * 100.0);
            }
        }
        "precision" => {
            println!("{:<10} {:>9}", "ci_bits", "speedup");
            for bits in 1..=8u8 {
                let mut s = SchedulerConfig::redsoc();
                s.ci_bits = bits;
                s.threshold_ticks = (1 << bits) - 1;
                let rep = simulate(trace.iter().copied(), core.clone().with_sched(s))
                    .map_err(|e| e.to_string())?;
                println!(
                    "{bits:<10} {:>8.1}%",
                    (rep.speedup_over(&base) - 1.0) * 100.0
                );
            }
        }
        other => return Err(format!("unknown knob {other:?} (threshold|precision)")),
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let threads = match flags.get("threads") {
        Some(t) => t
            .parse::<usize>()
            .map_err(|e| format!("bad --threads: {e}"))?
            .max(1),
        None => redsoc::bench::threads(),
    };
    let len: u64 = match flags.get("len") {
        Some(l) => l.parse().map_err(|e| format!("bad --len: {e}"))?,
        None => redsoc::bench::trace_len(),
    };
    let out = flags.get("out").unwrap_or("BENCH_sweep.json");
    let cache = redsoc::bench::TraceCache::new(len);
    let grid = run_full_sweep(&cache, &Mode::all(), threads);
    let doc = sweep_json(&grid, len);
    std::fs::write(out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{} jobs ({} benchmarks x 3 cores x {} modes) on {threads} thread(s)",
        grid.rows().len(),
        Benchmark::all().len(),
        Mode::all().len(),
    );
    println!(
        "wall {:.2}s, cpu {:.2}s ({:.2}x parallel efficiency)",
        grid.wall.as_secs_f64(),
        grid.cpu_time().as_secs_f64(),
        grid.cpu_time().as_secs_f64() / grid.wall.as_secs_f64().max(1e-9)
    );
    println!("wrote {out}");
    Ok(())
}

fn usage() -> String {
    "usage: redsoc <command>\n\
     \n\
     commands:\n\
     \x20 list                     list available benchmarks\n\
     \x20 run <bench> [flags]      simulate one benchmark\n\
     \x20                          (--events FILE streams the pipeline event log as JSONL)\n\
     \x20 trace <bench> [flags]    dump the pipeline event log\n\
     \x20                          (--format chrome|jsonl  --out FILE;\n\
     \x20                          chrome output loads in chrome://tracing)\n\
     \x20 compare <bench> [flags]  baseline vs ReDSOC vs TS vs MOS\n\
     \x20 sweep <bench> [flags]    design-knob sweep (--knob threshold|precision)\n\
     \x20 bench [flags]            full parallel sweep -> machine-readable JSON\n\
     \x20                          (--threads N  --len N  --out FILE;\n\
     \x20                          defaults: all cores, REDSOC_THREADS, BENCH_sweep.json)\n\
     \n\
     flags: --core small|medium|big  --sched baseline|redsoc|mos  --len N"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
